"""Property tests for the 2-D (limb-stacked) modmath paths.

The stacked kernels must agree elementwise with the scalar oracles
(``mulmod``, Barrett in both variants, Montgomery) in *every* kernel
regime: the int64 fast path (30-bit test primes), the double-word native
path (the paper's 54-bit word, including mixed-width stacks), and the
object-dtype arbitrary-precision fallback (61+-bit primes).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fhe.modmath import (MontgomeryContext, addmod, addmod_stack,
                               barrett_precompute, barrett_precompute_single,
                               barrett_reduce, barrett_reduce_single,
                               limb_dtype, mulmod, mulmod_stack,
                               negmod_stack, reduce_stack, scalar_add_stack,
                               scalar_mul_stack, stack_is_int64_safe,
                               stack_native_class, stack_residues, submod,
                               submod_stack, unstack_residues)
from repro.fhe.primes import generate_ntt_primes

N = 8
SMALL_PRIMES = generate_ntt_primes(4, 30, 1 << 10)     # int64 regime
BIG_PRIMES = generate_ntt_primes(3, 54, 1 << 10)       # dword regime
HUGE_PRIMES = generate_ntt_primes(2, 62, 1 << 10)      # object regime
MIXED_PRIMES = [SMALL_PRIMES[0], BIG_PRIMES[0]]        # widest rules: dword

PRIME_SETS = pytest.mark.parametrize(
    "moduli", [SMALL_PRIMES, BIG_PRIMES, HUGE_PRIMES, MIXED_PRIMES],
    ids=["int64-30bit", "dword-54bit", "object-62bit", "mixed"])


def stack_for(moduli, seed):
    rng = np.random.default_rng(seed)
    limbs = []
    for q in moduli:
        vals = [int(rng.integers(0, 1 << 62)) % q for _ in range(N)]
        limbs.append(np.array(vals, dtype=limb_dtype(q)))
    return stack_residues(limbs, moduli)


class TestStackLayout:
    def test_dtype_autoselection(self):
        assert stack_for(SMALL_PRIMES, 0).dtype == np.int64
        assert stack_for(BIG_PRIMES, 0).dtype == np.int64
        assert stack_for(MIXED_PRIMES, 0).dtype == np.int64
        assert stack_for(HUGE_PRIMES, 0).dtype == object

    def test_native_class_predicates(self):
        assert stack_is_int64_safe(SMALL_PRIMES)
        assert not stack_is_int64_safe(BIG_PRIMES)
        assert not stack_is_int64_safe(MIXED_PRIMES)
        assert stack_native_class(SMALL_PRIMES) == "int64"
        assert stack_native_class(BIG_PRIMES) == "dword"
        assert stack_native_class(MIXED_PRIMES) == "dword"
        assert stack_native_class(HUGE_PRIMES) == "object"

    @PRIME_SETS
    def test_unstack_round_trips(self, moduli):
        s = stack_for(moduli, 1)
        limbs = unstack_residues(s)
        assert len(limbs) == len(moduli)
        rebuilt = stack_residues(limbs, moduli)
        assert np.array_equal(np.asarray(s, dtype=object),
                              np.asarray(rebuilt, dtype=object))

    def test_limb_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stack_residues([np.zeros(N, dtype=np.int64)], SMALL_PRIMES)


@PRIME_SETS
@settings(max_examples=25, deadline=None)
@given(seed_a=st.integers(0, 2**32 - 1), seed_b=st.integers(0, 2**32 - 1))
def test_addsub_match_scalar_oracles(moduli, seed_a, seed_b):
    a, b = stack_for(moduli, seed_a), stack_for(moduli, seed_b)
    add = addmod_stack(a, b, moduli)
    sub = submod_stack(a, b, moduli)
    for i, q in enumerate(moduli):
        for j in range(N):
            assert int(add[i, j]) == addmod(int(a[i, j]), int(b[i, j]), q)
            assert int(sub[i, j]) == submod(int(a[i, j]), int(b[i, j]), q)


@PRIME_SETS
@settings(max_examples=25, deadline=None)
@given(seed_a=st.integers(0, 2**32 - 1), seed_b=st.integers(0, 2**32 - 1))
def test_mulmod_matches_barrett_and_montgomery(moduli, seed_a, seed_b):
    """One product, four independent oracles, elementwise equality."""
    a, b = stack_for(moduli, seed_a), stack_for(moduli, seed_b)
    prod = mulmod_stack(a, b, moduli)
    for i, q in enumerate(moduli):
        mu, k = barrett_precompute(q)
        mu1, k1 = barrett_precompute_single(q)
        mont = MontgomeryContext(q)
        for j in range(N):
            x, y = int(a[i, j]), int(b[i, j])
            expect = mulmod(x, y, q)
            assert int(prod[i, j]) == expect
            assert barrett_reduce(x * y, q, mu, k) == expect
            assert barrett_reduce_single(x * y, q, mu1, k1) == expect
            assert mont.from_mont(
                mont.mulmod(mont.to_mont(x), mont.to_mont(y))) == expect


@PRIME_SETS
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1),
       scalar=st.integers(-2**60, 2**60))
def test_scalar_ops_match_scalar_oracles(moduli, seed, scalar):
    a = stack_for(moduli, seed)
    scalars = [scalar] * len(moduli)
    mul = scalar_mul_stack(a, scalars, moduli)
    add = scalar_add_stack(a, scalars, moduli)
    for i, q in enumerate(moduli):
        for j in range(N):
            assert int(mul[i, j]) == mulmod(int(a[i, j]), scalar % q, q)
            assert int(add[i, j]) == addmod(int(a[i, j]), scalar % q, q)


@PRIME_SETS
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_neg_and_reduce(moduli, seed):
    a = stack_for(moduli, seed)
    neg = negmod_stack(a, moduli)
    for i, q in enumerate(moduli):
        for j in range(N):
            assert int(neg[i, j]) == (q - int(a[i, j])) % q
    # reduce of signed values agrees with Python %
    rng = np.random.default_rng(seed)
    signed = np.array([[int(rng.integers(-10**9, 10**9)) for _ in range(N)]
                       for _ in moduli], dtype=object)
    red = reduce_stack(signed, moduli)
    for i, q in enumerate(moduli):
        for j in range(N):
            assert int(red[i, j]) == int(signed[i, j]) % q


def test_54_bit_word_products_are_exact():
    """Regression guard: 54-bit products overflow int64 and must take the
    double-word path; a wrap-around would show up as an oracle mismatch."""
    q = BIG_PRIMES[0]
    assert q.bit_length() == 54
    a = stack_residues([np.array([q - 1] * N, dtype=np.int64)], [q])
    assert a.dtype == np.int64
    out = mulmod_stack(a, a, [q])
    assert int(out[0, 0]) == pow(q - 1, 2, q)


def test_62_bit_word_products_are_exact():
    """Past the native bound: the object fallback stays exact."""
    q = HUGE_PRIMES[0]
    assert q.bit_length() == 62
    a = stack_residues([np.array([q - 1] * N, dtype=object)], [q])
    assert a.dtype == object
    out = mulmod_stack(a, a, [q])
    assert int(out[0, 0]) == pow(q - 1, 2, q)
