"""Tests for the CKKS bootstrapping pipeline.

The full end-to-end bootstrap is the most expensive functional test in the
suite (~20 s); individual stages are tested separately and cheaply.
"""

import numpy as np
import pytest

from repro.fhe import CkksContext
from repro.fhe.bootstrap import BootstrapConfig, Bootstrapper


@pytest.fixture(scope="module")
def boot_ctx():
    return CkksContext.bootstrappable(seed=31)


@pytest.fixture(scope="module")
def bootstrapper(boot_ctx):
    return Bootstrapper(boot_ctx.params, boot_ctx.keygen, boot_ctx.encoder,
                        boot_ctx.evaluator)


class TestStages:
    def test_mod_raise_preserves_message_mod_q0(self, boot_ctx,
                                                bootstrapper):
        """After ModRaise the message is m + q0*I: reducing the decryption
        mod q0 must recover the original level-0 residues."""
        rng = np.random.default_rng(0)
        n = boot_ctx.params.num_slots
        z = rng.uniform(-0.05, 0.05, n)
        ct = boot_ctx.encrypt(z, level=0)
        raised = bootstrapper.mod_raise(ct)
        assert raised.level == boot_ctx.params.max_level
        q0 = boot_ctx.params.moduli[0]
        coeffs = boot_ctx.decryptor.decrypt_to_coeffs(raised)
        original = boot_ctx.decryptor.decrypt_to_coeffs(ct)
        for c_raised, c_orig in zip(coeffs[:64], original[:64]):
            assert (c_raised - c_orig) % q0 == 0

    def test_mod_raise_requires_level_zero(self, boot_ctx, bootstrapper):
        ct = boot_ctx.encrypt([0.01], level=1)
        with pytest.raises(ValueError):
            bootstrapper.mod_raise(ct)

    def test_mod_raise_integer_part_bounded(self, boot_ctx, bootstrapper):
        """|I| <= (1 + h)/2 for the sparse secret: validates the K bound."""
        rng = np.random.default_rng(1)
        n = boot_ctx.params.num_slots
        z = rng.uniform(-0.05, 0.05, n)
        ct = boot_ctx.encrypt(z, level=0)
        raised = bootstrapper.mod_raise(ct)
        q0 = boot_ctx.params.moduli[0]
        coeffs = boot_ctx.decryptor.decrypt_to_coeffs(raised)
        bound = bootstrapper.config.k_range
        for c in coeffs:
            assert abs(c) / q0 <= bound, "raised coeff exceeds K*q0"

    def test_chebyshev_coefficients_accurate(self, bootstrapper):
        """The plaintext Chebyshev model must approximate the target cos."""
        cfg = bootstrapper.config
        coeffs = bootstrapper._chebyshev_coeffs()
        k_prime = cfg.k_range + cfg.margin
        ys = np.linspace(-1, 1, 500)
        target = np.cos(2 * np.pi * (k_prime * ys - 0.25)
                        / (1 << cfg.double_angles))
        approx = np.polynomial.chebyshev.chebval(ys, coeffs)
        assert np.max(np.abs(approx - target)) < 1e-6

    def test_double_angle_identity_plaintext(self):
        """cos(2x) = 2cos(x)^2 - 1 chain recovers sin(2 pi t)."""
        cfg = BootstrapConfig()
        k_prime = cfg.k_range + cfg.margin
        t = np.linspace(-cfg.k_range, cfg.k_range, 1000)
        h = np.cos(2 * np.pi * (t - 0.25) / (1 << cfg.double_angles))
        for _ in range(cfg.double_angles):
            h = 2 * h * h - 1
        assert np.max(np.abs(h - np.sin(2 * np.pi * t))) < 1e-9


@pytest.mark.slow
class TestEndToEnd:
    """Full bootstrap pipeline: ~40s; excluded from the fast CI lane."""

    def test_full_bootstrap_refreshes_level(self, boot_ctx, bootstrapper):
        rng = np.random.default_rng(2)
        n = boot_ctx.params.num_slots
        z = rng.uniform(-0.05, 0.05, n) + 1j * rng.uniform(-0.05, 0.05, n)
        ct = boot_ctx.encrypt(z, level=1)
        out = bootstrapper.bootstrap(ct)
        assert out.level > ct.level, "bootstrap must gain levels"
        decoded = boot_ctx.decrypt(out)
        err = np.max(np.abs(decoded - z))
        # Noise floor of the 30-bit test parameters (see bootstrap.py).
        assert err < 5e-2, f"bootstrap error too large: {err}"

    def test_bootstrap_then_compute(self, boot_ctx, bootstrapper):
        """Refreshed ciphertexts must support further multiplication."""
        n = boot_ctx.params.num_slots
        z = np.full(n, 0.04)
        ct = boot_ctx.encrypt(z, level=1)
        out = bootstrapper.bootstrap(ct)
        assert out.level >= 1
        sq = boot_ctx.evaluator.he_square(out)
        decoded = boot_ctx.decrypt(sq)
        assert np.max(np.abs(decoded.real - 0.04 ** 2)) < 5e-2

    def test_wrong_scale_at_level_zero_rejected(self, boot_ctx,
                                                bootstrapper):
        ct = boot_ctx.encrypt([0.01], level=0,
                              scale=boot_ctx.params.scale * 4)
        with pytest.raises(ValueError):
            bootstrapper.bootstrap(ct)
