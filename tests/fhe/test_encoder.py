"""Tests for the CKKS canonical-embedding encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.encoder import CkksEncoder
from repro.fhe.params import CkksParameters


@pytest.fixture(scope="module")
def encoder():
    return CkksEncoder(CkksParameters.toy())


class TestRoundtrip:
    def test_real_vector(self, encoder):
        rng = np.random.default_rng(0)
        values = rng.uniform(-10, 10, encoder.params.num_slots)
        pt = encoder.encode(values)
        decoded = encoder.decode(pt.coeffs, pt.scale)
        assert np.max(np.abs(decoded.real - values)) < 1e-4
        assert np.max(np.abs(decoded.imag)) < 1e-4

    def test_complex_vector(self, encoder):
        rng = np.random.default_rng(1)
        n = encoder.params.num_slots
        values = rng.uniform(-2, 2, n) + 1j * rng.uniform(-2, 2, n)
        pt = encoder.encode(values)
        decoded = encoder.decode(pt.coeffs, pt.scale)
        assert np.max(np.abs(decoded - values)) < 1e-4

    def test_partial_vector_zero_padded(self, encoder):
        values = [1.0, 2.0, 3.0]
        pt = encoder.encode(values)
        decoded = encoder.decode(pt.coeffs, pt.scale)
        assert np.max(np.abs(decoded[:3].real - values)) < 1e-5
        assert np.max(np.abs(decoded[3:])) < 1e-5

    def test_too_many_values_rejected(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode([0.0] * (encoder.params.num_slots + 1))

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=1, max_size=16))
    def test_roundtrip_property(self, values):
        encoder = CkksEncoder(CkksParameters.toy())
        pt = encoder.encode(values)
        decoded = encoder.decode(pt.coeffs, pt.scale)
        assert np.max(np.abs(decoded[:len(values)].real
                             - np.array(values))) < 1e-3


class TestStructure:
    def test_coefficients_are_integers(self, encoder):
        pt = encoder.encode([1.5, -2.5])
        assert all(isinstance(c, int) for c in pt.coeffs)

    def test_encoding_is_additive(self, encoder):
        """encode(a) + encode(b) decodes to a + b (linearity)."""
        a = np.array([1.0, 2.0, -3.0])
        b = np.array([0.5, -1.5, 2.5])
        pa = encoder.encode(a)
        pb = encoder.encode(b)
        summed = [x + y for x, y in zip(pa.coeffs, pb.coeffs)]
        decoded = encoder.decode(summed, pa.scale)
        assert np.max(np.abs(decoded[:3].real - (a + b))) < 1e-4

    def test_constant_encodes_to_constant_poly(self, encoder):
        pt = encoder.encode_constant(2.5)
        assert pt.coeffs[0] == int(round(2.5 * encoder.params.scale))
        assert all(c == 0 for c in pt.coeffs[1:])
        decoded = encoder.decode(pt.coeffs, pt.scale)
        assert np.max(np.abs(decoded.real - 2.5)) < 1e-9

    def test_constant_matches_full_encode(self, encoder):
        n = encoder.params.num_slots
        via_const = encoder.encode_constant(1.25)
        via_full = encoder.encode([1.25] * n)
        decoded_c = encoder.decode(via_const.coeffs, via_const.scale)
        decoded_f = encoder.decode(via_full.coeffs, via_full.scale)
        assert np.max(np.abs(decoded_c - decoded_f)) < 1e-6

    def test_custom_scale(self, encoder):
        pt = encoder.encode([1.0], scale=2.0 ** 15)
        assert pt.scale == 2.0 ** 15
        decoded = encoder.decode(pt.coeffs, pt.scale)
        assert abs(decoded[0].real - 1.0) < 1e-3

    def test_slot_exponents_are_powers_of_five(self, encoder):
        two_n = 2 * encoder.params.ring_degree
        e = 1
        for j in range(8):
            assert encoder.slot_exponents[j] == e
            e = (e * 5) % two_n

    def test_rotation_symmetry(self, encoder):
        """Encoding of rot(z) equals automorphism-permuted encoding of z:
        checked at the decode level -- decode(encode(z), rotated slots)."""
        rng = np.random.default_rng(3)
        n = encoder.params.num_slots
        z = rng.uniform(-1, 1, n)
        pt = encoder.encode(z)
        decoded = encoder.decode(pt.coeffs, pt.scale)
        # Slot j of the encoding evaluates at exponent 5^j; rotating the
        # input by r must shift decoded slots by r.
        pt_rot = encoder.encode(np.roll(z, -1))
        decoded_rot = encoder.decode(pt_rot.coeffs, pt_rot.scale)
        assert np.max(np.abs(decoded_rot[:n - 1] - decoded[1:n])) < 1e-4
