"""Property-based tests of the homomorphic evaluation laws.

These pin the algebraic contract of the evaluator: decryption commutes
with the plaintext operations, for randomized inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe import CkksContext

#: Shared context: key generation is the expensive part.
CTX = CkksContext.toy(seed=61)

vectors = st.lists(
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False,
              allow_infinity=False, width=32),
    min_size=1, max_size=8)


def _dec(ct, length):
    return CTX.decrypt(ct)[:length].real


@settings(deadline=None, max_examples=12)
@given(vectors, vectors)
def test_addition_homomorphism(v1, v2):
    length = min(len(v1), len(v2))
    a, b = np.array(v1[:length]), np.array(v2[:length])
    out = CTX.evaluator.he_add(CTX.encrypt(a), CTX.encrypt(b))
    assert np.max(np.abs(_dec(out, length) - (a + b))) < 1e-3


@settings(deadline=None, max_examples=8)
@given(vectors, vectors)
def test_multiplication_homomorphism(v1, v2):
    length = min(len(v1), len(v2))
    a, b = np.array(v1[:length]), np.array(v2[:length])
    out = CTX.evaluator.he_mult(CTX.encrypt(a), CTX.encrypt(b))
    assert np.max(np.abs(_dec(out, length) - (a * b))) < 1e-3


@settings(deadline=None, max_examples=8)
@given(vectors, st.floats(min_value=-2.0, max_value=2.0,
                          allow_nan=False, width=32))
def test_scalar_distributes(v, c):
    a = np.array(v)
    ev = CTX.evaluator
    lhs = ev.scalar_mult(ev.scalar_add(CTX.encrypt(a), 0.5), c)
    rhs_expected = (a + 0.5) * c
    assert np.max(np.abs(_dec(lhs, len(a)) - rhs_expected)) < 5e-3


@settings(deadline=None, max_examples=8)
@given(vectors, st.integers(min_value=0, max_value=15))
def test_rotation_homomorphism(v, r):
    n = CTX.params.num_slots
    full = np.zeros(n)
    full[:len(v)] = v
    out = CTX.evaluator.he_rotate(CTX.encrypt(full), r)
    assert np.max(np.abs(_dec(out, n) - np.roll(full, -r))) < 1e-3


@settings(deadline=None, max_examples=6)
@given(vectors)
def test_add_then_sub_is_identity(v):
    a = np.array(v)
    ev = CTX.evaluator
    ct = CTX.encrypt(a)
    other = CTX.encrypt(np.ones_like(a) * 0.25)
    roundtrip = ev.he_sub(ev.he_add(ct, other), other)
    assert np.max(np.abs(_dec(roundtrip, len(a)) - a)) < 1e-3


@settings(deadline=None, max_examples=6)
@given(vectors)
def test_mult_commutes(v):
    a = np.array(v)
    b = a[::-1].copy()
    ev = CTX.evaluator
    ct_a, ct_b = CTX.encrypt(a), CTX.encrypt(b)
    lhs = _dec(ev.he_mult(ct_a, ct_b), len(a))
    rhs = _dec(ev.he_mult(ct_b, ct_a), len(a))
    assert np.max(np.abs(lhs - rhs)) < 1e-3
