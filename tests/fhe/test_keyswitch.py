"""The batched key-switch pipeline: backend ops, caching, and hoisting.

Covers the PR-2 tentpole: the ``digit_decompose`` / ``mod_up`` /
``mod_down`` backend ops must be bit-exact across backends, the per-level
``KeySwitchContext`` tables must be cached, and rotations from a hoisted
handle must reproduce the sequential ``he_rotate`` path bit for bit
(centered ModUp makes the raised digits commute with automorphisms).
"""

import dataclasses

import numpy as np
import pytest

from repro.fhe import (CkksContext, CkksParameters, PolyContext,
                       Representation)
from repro.fhe.keys import key_switch, mod_down, raise_digits
from repro.fhe.rns import KeySwitchContext, digit_spans

TOY = CkksParameters.toy()


def limbs_equal(p1, p2):
    return all(np.array_equal(np.asarray(a, dtype=object),
                              np.asarray(b, dtype=object))
               for a, b in zip(p1.limbs, p2.limbs))


def ct_equal(ct1, ct2):
    return (ct1.level == ct2.level and ct1.scale == ct2.scale
            and limbs_equal(ct1.c0, ct2.c0) and limbs_equal(ct1.c1, ct2.c1))


@pytest.fixture(scope="module")
def contexts():
    return (CkksContext(TOY, seed=23, backend="reference"),
            CkksContext(TOY, seed=23, backend="stacked"))


class TestKeySwitchContext:
    def test_cache_hit_same_level(self):
        ctx = PolyContext(TOY, seed=1)
        assert ctx.backend.keyswitch_context(2) \
            is ctx.backend.keyswitch_context(2)

    def test_cache_miss_across_levels(self):
        ctx = PolyContext(TOY, seed=1)
        ks2 = ctx.backend.keyswitch_context(2)
        ks3 = ctx.backend.keyswitch_context(3)
        assert ks2 is not ks3
        assert ks2.level == 2 and ks3.level == 3
        assert ctx.backend.keyswitch_context(2) is ks2

    def test_tables_match_direct_computation(self):
        ksctx = KeySwitchContext(TOY, TOY.max_level)
        q_big = 1
        for q in ksctx.ct_moduli:
            q_big *= q
        assert ksctx.q_big == q_big
        for (start, stop), hat_qj, invs in zip(ksctx.digit_spans,
                                               ksctx.digit_hat,
                                               ksctx.digit_hat_inv):
            digit_prod = 1
            for q in ksctx.ct_moduli[start:stop]:
                digit_prod *= q
            assert hat_qj == q_big // digit_prod
            hat_inv = pow(hat_qj % digit_prod, -1, digit_prod)
            assert invs == [hat_inv % q
                            for q in ksctx.ct_moduli[start:stop]]
        for q, p_inv in zip(ksctx.ct_moduli, ksctx.p_inv):
            assert (p_inv * ksctx.p_prod) % q == 1

    def test_digit_spans_cover_every_limb_once(self):
        for level in range(TOY.max_level + 1):
            spans = digit_spans(level, TOY.alpha)
            covered = [i for start, stop in spans
                       for i in range(start, stop)]
            assert covered == list(range(level + 1))

    def test_modup_weights_shape_and_values(self):
        ksctx = KeySwitchContext(TOY, 3)
        for basis, weights in zip(ksctx.digit_bases, ksctx.modup_weights):
            assert weights.shape == (len(ksctx.extended), basis.size)
            for t, p in enumerate(ksctx.extended):
                assert list(weights[t]) == [hat % p
                                            for hat in basis.punctured]


class TestBackendOpsBitExact:
    """reference and stacked must produce identical key-switch integers."""

    def _poly_pair(self, seed=7, level=None):
        level = TOY.max_level if level is None else level
        moduli = TOY.moduli[:level + 1]
        ref = PolyContext(TOY, seed=seed, backend="reference")
        stk = PolyContext(TOY, seed=seed, backend="stacked")
        return (ref.random_uniform(moduli, Representation.COEFF),
                stk.random_uniform(moduli, Representation.COEFF))

    def test_digit_decompose_matches(self):
        p_ref, p_stk = self._poly_pair()
        ks_ref = p_ref.context.backend.keyswitch_context(TOY.max_level)
        ks_stk = p_stk.context.backend.keyswitch_context(TOY.max_level)
        d_ref = p_ref.context.backend.digit_decompose(p_ref.data, ks_ref)
        d_stk = p_stk.context.backend.digit_decompose(p_stk.data, ks_stk)
        for dr, ds in zip(d_ref, d_stk):
            for a, b in zip(dr, ds):
                assert np.array_equal(np.asarray(a, dtype=object),
                                      np.asarray(b, dtype=object))

    def test_raise_digits_match(self):
        p_ref, p_stk = self._poly_pair()
        ks_ref = p_ref.context.backend.keyswitch_context(TOY.max_level)
        ks_stk = p_stk.context.backend.keyswitch_context(TOY.max_level)
        for r_ref, r_stk in zip(raise_digits(p_ref, ks_ref),
                                raise_digits(p_stk, ks_stk)):
            assert r_ref.moduli == ks_ref.extended
            assert limbs_equal(r_ref, r_stk)

    def test_mod_down_matches(self):
        level = TOY.max_level
        extended = TOY.moduli[:level + 1] + TOY.special_moduli
        ref = PolyContext(TOY, seed=3, backend="reference")
        stk = PolyContext(TOY, seed=3, backend="stacked")
        p_ref = ref.random_uniform(extended, Representation.EVAL)
        p_stk = stk.random_uniform(extended, Representation.EVAL)
        assert limbs_equal(mod_down(p_ref, TOY, level),
                           mod_down(p_stk, TOY, level))

    def test_key_switch_matches(self, contexts):
        ref, stk = contexts
        ct_ref = ref.encrypt([1.5, -2.25, 3.0])
        ct_stk = stk.encrypt([1.5, -2.25, 3.0])
        key_ref = ref.keygen.relinearization_key(ct_ref.level)
        key_stk = stk.keygen.relinearization_key(ct_stk.level)
        ks_ref = key_switch(ct_ref.c1, key_ref, TOY)
        ks_stk = key_switch(ct_stk.c1, key_stk, TOY)
        assert limbs_equal(ks_ref[0], ks_stk[0])
        assert limbs_equal(ks_ref[1], ks_stk[1])

    def test_key_switch_rejects_wrong_basis(self, contexts):
        ref, _ = contexts
        ct = ref.encrypt([1.0], level=2)
        key = ref.keygen.relinearization_key(3)
        with pytest.raises(ValueError, match="does not match key level"):
            key_switch(ct.c1, key, TOY)


class TestWideDigitFallback:
    """A 16-limb digit at the 30-bit word exceeds the int64 matmul bound
    (16 * 2**29 * 2**30 >= 2**63), so the stacked backend must take the
    per-term-reduction sweep — and stay bit-exact with reference."""

    def test_wide_digit_keyswitch_matches(self):
        params = CkksParameters._build(ring_degree=1 << 8, scale_bits=29,
                                       prime_bits=30, max_level=15, dnum=1,
                                       boot_levels=4, fft_iterations=2)
        assert params.alpha == 16
        ref = CkksContext(params, seed=41, backend="reference")
        stk = CkksContext(params, seed=41, backend="stacked")
        ks_ref = ref.keygen.context.backend.keyswitch_context(
            params.max_level)
        assert not all(ks_ref.modup_matmul_safe)
        ct_ref = ref.encrypt([1.0, -2.0])
        ct_stk = stk.encrypt([1.0, -2.0])
        out_ref = ref.evaluator.he_rotate(ct_ref, 3)
        out_stk = stk.evaluator.he_rotate(ct_stk, 3)
        assert ct_equal(out_ref, out_stk)


class TestBigWordKeySwitch:
    """Cross-backend bit-exactness at the paper's 54-bit word (every
    modulus >= 2**31: the double-word native ModUp/ModDown paths)."""

    PARAMS_54 = CkksParameters._build(ring_degree=1 << 6, scale_bits=50,
                                      prime_bits=54, max_level=3,
                                      boot_levels=2, dnum=2,
                                      fft_iterations=1)

    def test_keyswitch_and_rotation_match(self):
        ref = CkksContext(self.PARAMS_54, seed=5, backend="reference")
        stk = CkksContext(self.PARAMS_54, seed=5, backend="stacked")
        m_ref = ref.evaluator.he_mult(ref.encrypt([1.5, -2.0]),
                                      ref.encrypt([0.5, 3.0]))
        m_stk = stk.evaluator.he_mult(stk.encrypt([1.5, -2.0]),
                                      stk.encrypt([0.5, 3.0]))
        assert ct_equal(m_ref, m_stk)
        r_ref = ref.evaluator.he_rotate(ref.encrypt([1.0, 2.0, 3.0]), 1)
        r_stk = stk.evaluator.he_rotate(stk.encrypt([1.0, 2.0, 3.0]), 1)
        assert ct_equal(r_ref, r_stk)

    def test_hoisted_matches_sequential(self):
        stk = CkksContext(self.PARAMS_54, seed=7, backend="stacked")
        ev = stk.evaluator
        ct = stk.encrypt([1.0, -0.5, 2.0])
        out = ev.hoisted_rotations(ct, [1, 2])
        for r in (1, 2):
            assert ct_equal(out[r], ev.he_rotate(ct, r))


class TestApproxModDown:
    """Opt-in float-corrected ModDown: off by default, within the
    documented +-1 centered-residue bound of exact, bit-exact across
    backends, and decrypting correctly at the paper's 54-bit word."""

    PARAMS_54 = TestBigWordKeySwitch.PARAMS_54
    APPROX_54 = dataclasses.replace(PARAMS_54, mod_down_mode="approx")
    APPROX_TOY = dataclasses.replace(TOY, mod_down_mode="approx")

    def test_exact_is_the_default(self):
        assert CkksParameters.toy().mod_down_mode == "exact"
        ksctx = KeySwitchContext(TOY, 2)
        assert ksctx.mod_down_mode == "exact"
        assert not hasattr(ksctx, "moddown_weights")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mod_down_mode"):
            KeySwitchContext(TOY, 2, mod_down_mode="fast")

    @pytest.mark.parametrize("exact_params,approx_params", [
        (TOY, APPROX_TOY), (PARAMS_54, APPROX_54),
    ], ids=["toy-30bit", "paper-word-54bit"])
    @pytest.mark.parametrize("backend", ["reference", "stacked"])
    def test_centered_error_within_documented_bound(self, exact_params,
                                                    approx_params, backend):
        from repro.fhe.noise import mod_down_error_bound
        level = exact_params.max_level
        extended = exact_params.moduli[:level + 1] \
            + exact_params.special_moduli
        exact_ctx = PolyContext(exact_params, seed=9, backend=backend)
        approx_ctx = PolyContext(approx_params, seed=9, backend=backend)
        poly_e = exact_ctx.random_uniform(extended, Representation.COEFF)
        poly_a = approx_ctx.random_uniform(extended, Representation.COEFF)
        ks_e = exact_ctx.backend.keyswitch_context(level)
        ks_a = approx_ctx.backend.keyswitch_context(level)
        assert ks_a.mod_down_mode == "approx"
        out_e = exact_ctx.backend.mod_down(poly_e.data, ks_e)
        out_a = approx_ctx.backend.mod_down(poly_a.data, ks_a)
        bound = mod_down_error_bound(approx_params)
        assert bound == 1.0
        for i, q in enumerate(ks_e.ct_moduli):
            xe = np.asarray(list(out_e)[i], dtype=object)
            xa = np.asarray(list(out_a)[i], dtype=object)
            diff = (xa - xe) % q
            centered = np.where(diff > q // 2, diff - q, diff)
            worst = int(np.max(np.abs(centered.astype(object))))
            assert worst <= bound, f"limb {i}: off by {worst}"

    def test_backends_bit_exact_in_approx_mode(self):
        ref = PolyContext(self.APPROX_54, seed=3, backend="reference")
        stk = PolyContext(self.APPROX_54, seed=3, backend="stacked")
        level = self.APPROX_54.max_level
        extended = self.APPROX_54.moduli[:level + 1] \
            + self.APPROX_54.special_moduli
        p_ref = ref.random_uniform(extended, Representation.EVAL)
        p_stk = stk.random_uniform(extended, Representation.EVAL)
        assert limbs_equal(mod_down(p_ref, self.APPROX_54, level),
                           mod_down(p_stk, self.APPROX_54, level))

    def test_approx_keyswitch_decrypts_correctly(self):
        """Full HEMult + rotation under approx ModDown at the 54-bit word:
        the +-1 coefficient error is far below the noise floor."""
        ctx = CkksContext(self.APPROX_54, seed=11, backend="stacked")
        ev = ctx.evaluator
        v = np.array([0.5, -0.75, 1.25])
        prod = ev.he_mult(ctx.encrypt(v), ctx.encrypt(v))
        got = ctx.decrypt(prod)[:3].real
        assert np.max(np.abs(got - v ** 2)) < 1e-6
        rot = ev.he_rotate(ctx.encrypt(v), 1)
        got = ctx.decrypt(rot)[:2].real
        assert np.max(np.abs(got - v[1:3])) < 1e-6

    def test_slot_error_budget_is_negligible(self):
        from repro.fhe.noise import approx_mod_down_slot_error
        paper = CkksParameters.paper()
        # One KeySwitch adds at most N/Delta slot error: ~2**-38 at the
        # paper's N=2**16, Delta=2**54.
        assert approx_mod_down_slot_error(paper) < 2 ** -37
        assert approx_mod_down_slot_error(paper, num_keyswitches=0) == 0.0


class TestModUpOvershoot:
    def test_raised_digit_is_x_plus_small_multiple_of_digit_modulus(self):
        """ModUp output = digit + e*Q_j mod p with |e| <= digit size / 2."""
        ctx = PolyContext(TOY, seed=13, backend="reference")
        level = TOY.max_level
        ksctx = ctx.backend.keyswitch_context(level)
        poly = ctx.random_uniform(ksctx.ct_moduli, Representation.COEFF)
        digits = ctx.backend.digit_decompose(poly.data, ksctx)
        for j, digit in enumerate(digits):
            basis = ksctx.digit_bases[j]
            raised = ctx.backend.mod_up(digit, j, ksctx)
            # Exact digit value, centered, from the scaled residues.
            centered = basis.compose_centered_vec(list(digit))
            half = (basis.size + 1) // 2
            for t, p in enumerate(ksctx.extended):
                got = np.asarray(raised[t], dtype=object)
                for i in range(0, len(got), 37):
                    candidates = {
                        (int(centered[i]) + e * basis.big_modulus) % p
                        for e in range(-half, half + 1)}
                    assert int(got[i]) % p in candidates


class TestHoistedRotations:
    @pytest.mark.parametrize("backend", ["reference", "stacked"])
    def test_bit_exact_with_sequential(self, backend):
        ctx = CkksContext(TOY, seed=31, backend=backend)
        ev = ctx.evaluator
        ct = ctx.encrypt([1.0, -2.0, 3.5, 0.25])
        rotations = [1, 2, 7, 130]
        hoisted = ev.hoisted_rotations(ct, rotations)
        for r in rotations:
            assert ct_equal(hoisted[r], ev.he_rotate(ct, r))

    def test_rotation_zero_returns_copy(self, contexts):
        _, stk = contexts
        ct = stk.encrypt([1.0, 2.0])
        out = stk.evaluator.hoisted_rotations(ct, [0])
        assert set(out) == {0}
        assert ct_equal(out[0], ct)
        assert out[0] is not ct

    def test_rotations_normalized_modulo_slots(self, contexts):
        _, stk = contexts
        ev = stk.evaluator
        ct = stk.encrypt([1.0, 2.0, 3.0])
        n = TOY.ring_degree // 2
        out = ev.hoisted_rotations(ct, [1, n + 1, 2])
        assert set(out) == {1, 2}
        assert ct_equal(out[1], ev.he_rotate(ct, 1))

    def test_conjugate_hoisted_matches_sequential(self, contexts):
        for ctx in contexts:
            ev = ctx.evaluator
            ct = ctx.encrypt([0.5 + 0.25j, -1.0 - 2.0j])
            hoisted = ev.hoist(ct)
            assert ct_equal(ev.conjugate_hoisted(hoisted),
                            ev.he_conjugate(ct))

    def test_hoisted_handle_reusable_across_galois(self, contexts):
        """One hoist serves rotations and the conjugation (bootstrap use)."""
        _, stk = contexts
        ev = stk.evaluator
        ct = stk.encrypt([1.0, 2.0, 3.0, 4.0])
        hoisted = ev.hoist(ct)
        assert ct_equal(ev.rotate_hoisted(hoisted, 3), ev.he_rotate(ct, 3))
        assert ct_equal(ev.conjugate_hoisted(hoisted), ev.he_conjugate(ct))
        assert ct_equal(ev.rotate_hoisted(hoisted, 5), ev.he_rotate(ct, 5))

    def test_decrypted_rotation_is_correct(self, contexts):
        for ctx in contexts:
            values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
            ct = ctx.encrypt(values)
            out = ctx.evaluator.hoisted_rotations(ct, [2])
            got = ctx.decrypt(out[2])[:3].real
            assert np.max(np.abs(got - values[2:5])) < 1e-4


class TestLinearTransformHoisting:
    def test_apply_with_external_hoist_matches_internal(self, contexts):
        from repro.fhe.linear import LinearTransform
        _, stk = contexts
        ev = stk.evaluator
        n = TOY.ring_degree // 2
        rng = np.random.default_rng(5)
        matrix = np.zeros((n, n))
        idx = np.arange(n)
        for k in (0, 1, 3, 17):
            matrix[idx, (idx + k) % n] = rng.normal(size=n) * 0.1
        transform = LinearTransform(ev, matrix)
        ct = stk.encrypt(rng.normal(size=n) * 0.1)
        internal = transform.apply(ct)
        external = transform.apply(ct, hoisted=ev.hoist(ct))
        assert ct_equal(internal, external)
