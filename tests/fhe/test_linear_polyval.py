"""Tests for homomorphic linear transforms and polynomial evaluation."""

import numpy as np
import pytest

from repro.fhe import CkksContext
from repro.fhe.linear import (LinearTransform, matrix_diagonals,
                              multiply_by_i)
from repro.fhe.polyval import (evaluate_chebyshev, evaluate_polynomial,
                               match_scale_level, normalize_group)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.toy(seed=21)


class TestDiagonals:
    def test_diagonal_extraction(self):
        m = np.array([[1, 2], [3, 4]], dtype=float)
        diags = matrix_diagonals(m)
        assert np.allclose(diags[0], [1, 4])
        assert np.allclose(diags[1], [2, 3])

    def test_zero_diagonals_skipped(self):
        m = np.eye(4)
        diags = matrix_diagonals(m)
        assert set(diags) == {0}

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            matrix_diagonals(np.zeros((2, 3)))

    def test_diagonal_reconstruction(self):
        rng = np.random.default_rng(0)
        m = rng.normal(size=(8, 8))
        diags = matrix_diagonals(m)
        rows = np.arange(8)
        rebuilt = np.zeros((8, 8))
        for k, d in diags.items():
            rebuilt[rows, (rows + k) % 8] = d.real
        assert np.allclose(rebuilt, m)


class TestLinearTransform:
    def test_identity(self, ctx):
        n = ctx.params.num_slots
        rng = np.random.default_rng(1)
        z = rng.uniform(-1, 1, n)
        lt = LinearTransform(ctx.evaluator, np.eye(n))
        out = lt.apply(ctx.encrypt(z))
        assert np.max(np.abs(ctx.decrypt(out).real - z)) < 1e-3

    def test_dense_real_matrix(self, ctx):
        n = ctx.params.num_slots
        rng = np.random.default_rng(2)
        m = rng.normal(size=(n, n)) / np.sqrt(n)
        z = rng.uniform(-1, 1, n)
        lt = LinearTransform(ctx.evaluator, m)
        out = lt.apply(ctx.encrypt(z))
        assert np.max(np.abs(ctx.decrypt(out).real - m @ z)) < 1e-2

    def test_complex_matrix(self, ctx):
        n = ctx.params.num_slots
        rng = np.random.default_rng(3)
        m = (rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))) / n
        z = rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n)
        lt = LinearTransform(ctx.evaluator, m)
        out = lt.apply(ctx.encrypt(z))
        assert np.max(np.abs(ctx.decrypt(out) - m @ z)) < 1e-2

    def test_consumes_one_level(self, ctx):
        n = ctx.params.num_slots
        lt = LinearTransform(ctx.evaluator, np.eye(n))
        ct = ctx.encrypt(np.ones(n) * 0.5)
        out = lt.apply(ct)
        assert out.level == ct.level - 1

    def test_sparse_diagonal_matrix_cheap(self, ctx):
        """A circulant shift matrix has one diagonal -> no giant steps."""
        n = ctx.params.num_slots
        m = np.zeros((n, n))
        rows = np.arange(n)
        m[rows, (rows + 1) % n] = 1.0   # left rotation by 1
        lt = LinearTransform(ctx.evaluator, m)
        assert lt.num_diagonals == 1
        rng = np.random.default_rng(4)
        z = rng.uniform(-1, 1, n)
        out = lt.apply(ctx.encrypt(z))
        assert np.max(np.abs(ctx.decrypt(out).real - np.roll(z, -1))) < 1e-3

    def test_dimension_mismatch_rejected(self, ctx):
        with pytest.raises(ValueError):
            LinearTransform(ctx.evaluator, np.eye(4))


class TestMultiplyByI:
    def test_exact_rotation_by_i(self, ctx):
        rng = np.random.default_rng(5)
        n = ctx.params.num_slots
        z = rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n)
        ct = ctx.encrypt(z)
        out = multiply_by_i(ctx.evaluator, ct)
        assert out.level == ct.level           # free: no level consumed
        assert out.scale == ct.scale
        assert np.max(np.abs(ctx.decrypt(out) - 1j * z)) < 1e-4

    def test_four_applications_identity(self, ctx):
        z = np.array([0.3 - 0.7j, 1.0 + 0.1j])
        ct = ctx.encrypt(z)
        for _ in range(4):
            ct = multiply_by_i(ctx.evaluator, ct)
        assert np.max(np.abs(ctx.decrypt(ct)[:2] - z)) < 1e-4


class TestScaleManagement:
    def test_match_scale_level_preserves_value(self, ctx):
        v = np.array([0.5, -0.25, 0.75])
        ct = ctx.encrypt(v)
        adjusted = match_scale_level(ctx.evaluator, ct, ct.level,
                                     ct.scale * 1.37)
        assert abs(adjusted.scale - ct.scale * 1.37) < 1e-3 * ct.scale
        assert np.max(np.abs(ctx.decrypt(adjusted)[:3].real - v)) < 1e-3

    def test_match_scale_level_drops_levels(self, ctx):
        ct = ctx.encrypt([1.0])
        out = match_scale_level(ctx.evaluator, ct, ct.level - 2, ct.scale)
        assert out.level == ct.level - 2

    def test_cannot_raise_level(self, ctx):
        ct = ctx.encrypt([1.0], level=1)
        with pytest.raises(ValueError):
            match_scale_level(ctx.evaluator, ct, 2, ct.scale)

    def test_normalize_group(self, ctx):
        v = np.array([0.4])
        a = ctx.encrypt(v)
        b = ctx.evaluator.he_square(ctx.encrypt(v))       # deeper, drifted
        aligned = normalize_group(ctx.evaluator, [a, b])
        assert aligned[0].level == aligned[1].level
        assert abs(aligned[0].scale - aligned[1].scale) \
            < 1e-6 * aligned[0].scale
        total = ctx.evaluator.he_add(aligned[0], aligned[1])
        assert abs(ctx.decrypt(total)[0].real - (0.4 + 0.16)) < 1e-3


class TestPolynomialEvaluation:
    def test_quadratic(self, ctx):
        # Result values stay below the level-0 capacity q0/(2*Delta) ~ 2.
        v = np.linspace(-1, 1, 16)
        ct = ctx.encrypt(v)
        out = evaluate_polynomial(ctx.evaluator, ct, [0.5, -0.5, 0.25])
        expected = 0.5 - 0.5 * v + 0.25 * v ** 2
        assert np.max(np.abs(ctx.decrypt(out)[:16].real - expected)) < 1e-3

    def test_constant_and_linear(self, ctx):
        v = np.linspace(-1, 1, 8)
        ct = ctx.encrypt(v)
        out_c = evaluate_polynomial(ctx.evaluator, ct, [0.75])
        assert np.max(np.abs(ctx.decrypt(out_c)[:8].real - 0.75)) < 1e-3
        out_l = evaluate_polynomial(ctx.evaluator, ct, [0.5, 2.0])
        assert np.max(np.abs(ctx.decrypt(out_l)[:8].real
                             - (0.5 + 2 * v))) < 1e-3

    def test_sigmoid_degree3(self, ctx):
        """The HE-LR sigmoid approximation: 0.5 + 0.15x - 0.0015x^3."""
        coeffs = [0.5, 0.15012, 0.0, -0.0015930]
        v = np.linspace(-4, 4, 32)
        ct = ctx.encrypt(v)
        out = evaluate_polynomial(ctx.evaluator, ct, coeffs)
        expected = np.polyval(coeffs[::-1], v)
        assert np.max(np.abs(ctx.decrypt(out)[:32].real - expected)) < 5e-3

    def test_chebyshev_vs_numpy(self, ctx):
        """Chebyshev-basis evaluation of cos(x) on [-1, 1], degree 7."""
        cheb = np.polynomial.chebyshev.Chebyshev.interpolate(np.cos, 7)
        v = np.linspace(-0.9, 0.9, 16)
        ct = ctx.encrypt(v)
        out = evaluate_chebyshev(ctx.evaluator, ct, list(cheb.coef))
        assert np.max(np.abs(ctx.decrypt(out)[:16].real - np.cos(v))) < 1e-2
