"""Unit + property tests for modular arithmetic primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fhe import modmath

PRIMES = [17, 257, 65537, 1032193, (1 << 30) - 35, 2**54 - 33]  # mixed sizes
ODD_PRIMES = [p for p in PRIMES if p % 2 == 1]


@st.composite
def modulus_and_operands(draw):
    q = draw(st.sampled_from([17, 257, 65537, 1032193, 2**31 - 1,
                              2**54 + 77]))
    a = draw(st.integers(min_value=0, max_value=q - 1))
    b = draw(st.integers(min_value=0, max_value=q - 1))
    return q, a, b


class TestScalarOps:
    @given(modulus_and_operands())
    def test_addmod_matches_builtin(self, qab):
        q, a, b = qab
        assert modmath.addmod(a, b, q) == (a + b) % q

    @given(modulus_and_operands())
    def test_submod_matches_builtin(self, qab):
        q, a, b = qab
        assert modmath.submod(a, b, q) == (a - b) % q

    @given(modulus_and_operands())
    def test_barrett_classic_matches_builtin(self, qab):
        q, a, b = qab
        mu, k = modmath.barrett_precompute(q)
        assert modmath.barrett_reduce(a * b, q, mu, k) == (a * b) % q

    @given(modulus_and_operands())
    def test_barrett_single_subtraction_matches_builtin(self, qab):
        q, a, b = qab
        mu, k = modmath.barrett_precompute_single(q)
        assert modmath.barrett_reduce_single(a * b, q, mu, k) == (a * b) % q

    @given(modulus_and_operands())
    def test_montgomery_matches_builtin(self, qab):
        q, a, b = qab
        if q % 2 == 0:
            q += 1
            a %= q
            b %= q
        ctx = modmath.MontgomeryContext(q)
        am, bm = ctx.to_mont(a), ctx.to_mont(b)
        assert ctx.from_mont(ctx.mulmod(am, bm)) == (a * b) % q

    def test_invmod_roundtrip(self):
        q = 1032193
        for a in [1, 2, 3, 12345, q - 1]:
            assert (a * modmath.invmod(a, q)) % q == 1

    def test_invmod_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            modmath.invmod(0, 17)

    def test_barrett_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            modmath.barrett_precompute(1)

    def test_montgomery_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            modmath.MontgomeryContext(16)


class TestVectorOps:
    @pytest.mark.parametrize("q", PRIMES)
    def test_vector_ops_match_scalar(self, q):
        rng = np.random.default_rng(7)
        a = modmath.random_residues(64, q, rng)
        b = modmath.random_residues(64, q, rng)
        expect_add = [(int(x) + int(y)) % q for x, y in zip(a, b)]
        expect_sub = [(int(x) - int(y)) % q for x, y in zip(a, b)]
        expect_mul = [(int(x) * int(y)) % q for x, y in zip(a, b)]
        assert [int(v) for v in modmath.addmod_vec(a, b, q)] == expect_add
        assert [int(v) for v in modmath.submod_vec(a, b, q)] == expect_sub
        assert [int(v) for v in modmath.mulmod_vec(a, b, q)] == expect_mul

    @pytest.mark.parametrize("q", PRIMES)
    def test_negation(self, q):
        rng = np.random.default_rng(8)
        a = modmath.random_residues(32, q, rng)
        neg = modmath.negmod_vec(a, q)
        s = modmath.addmod_vec(a, neg, q)
        assert all(int(v) == 0 for v in s)

    @pytest.mark.parametrize("q", PRIMES)
    def test_random_residues_in_range(self, q):
        rng = np.random.default_rng(9)
        a = modmath.random_residues(1000, q, rng)
        assert all(0 <= int(v) < q for v in a)

    def test_scalar_mulmod_vec(self):
        q = 1032193
        rng = np.random.default_rng(10)
        a = modmath.random_residues(16, q, rng)
        out = modmath.mulmod_vec(a, 12345, q)
        assert [int(v) for v in out] == [(int(x) * 12345) % q for x in a]

    def test_54_bit_modulus_uses_native_dword_path(self):
        q = 2**54 - 33
        rng = np.random.default_rng(11)
        a = modmath.random_residues(8, q, rng)
        b = modmath.random_residues(8, q, rng)
        assert a.dtype == np.int64  # native storage at the paper word
        out = modmath.mulmod_vec(a, b, q)
        # Products are ~108 bits; correctness proves the double-word
        # Barrett reduction is exact (no int64 wrap).
        assert out.dtype == np.int64
        assert [int(v) for v in out] == [(int(x) * int(y)) % q
                                         for x, y in zip(a, b)]

    def test_61_bit_modulus_uses_object_path(self):
        q = 2**62 - 57
        rng = np.random.default_rng(12)
        a = modmath.random_residues(8, q, rng)
        b = modmath.random_residues(8, q, rng)
        assert a.dtype == object
        out = modmath.mulmod_vec(a, b, q)
        assert [int(v) for v in out] == [(int(x) * int(y)) % q
                                         for x, y in zip(a, b)]
