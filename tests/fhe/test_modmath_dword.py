"""Property tests for the double-word (32..60-bit) native modmath paths.

The tentpole claim of the native-kernel PR: for every modulus below
2**61, the vectorized double-word mulmod (Barrett-128) and the Shoup
precomputed-quotient multiply produce exactly the residues of the scalar
Python-int oracles — classic Barrett, single-subtraction Barrett, and
Montgomery — across random primes of every width from 32 to 61 bits.
Also covers the word-split plane helpers the RNS lifts are built on, the
object-dtype fallback at 61+ bits, and the ``force_object_dtype`` switch.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe import modmath
from repro.fhe.modmath import (MontgomeryContext, NATIVE_SAFE_MODULUS,
                               barrett_precompute, barrett_precompute_single,
                               barrett_reduce, barrett_reduce_single,
                               join_words, horner_fold_mod, limb_dtype,
                               mulmod_stack, mulmod_vec, native_class,
                               shoup_mulmod_vec, shoup_precompute,
                               split_words, stack_native_class,
                               stack_residues)
from repro.fhe.primes import is_prime

N = 16


def _prime_near(start: int, bits: int) -> int:
    """Deterministic prime of exactly ``bits`` bits at/above ``start``."""
    lo, hi = 1 << (bits - 1), (1 << bits) - 1
    p = max(start | 1, lo | 1)
    while not is_prime(p):
        p += 2
        if p > hi:  # extremely unlikely wrap; restart low
            p = lo | 1
    return p


def _prime_pool() -> list[int]:
    """One random prime per width 32..61 bits (seeded, so stable)."""
    rng = np.random.default_rng(0xD0D)
    pool = []
    for bits in range(32, 62):
        start = (1 << (bits - 1)) + int(rng.integers(0, 1 << (bits - 2)))
        pool.append(_prime_near(start, bits))
    return pool


DWORD_PRIMES = _prime_pool()


@st.composite
def prime_and_operands(draw):
    q = draw(st.sampled_from(DWORD_PRIMES))
    a = draw(st.lists(st.integers(0, q - 1), min_size=N, max_size=N))
    b = draw(st.lists(st.integers(0, q - 1), min_size=N, max_size=N))
    return q, np.array(a, dtype=np.int64), np.array(b, dtype=np.int64)


class TestDwordAgainstScalarOracles:
    @given(prime_and_operands())
    @settings(max_examples=60, deadline=None)
    def test_mulmod_vec_matches_barrett_oracles(self, qab):
        q, a, b = qab
        assert native_class(q) == "dword"
        out = mulmod_vec(a, b, q)
        assert out.dtype == np.int64
        mu, k = barrett_precompute(q)
        mu1, k1 = barrett_precompute_single(q)
        for x, y, got in zip(a, b, out):
            x, y = int(x), int(y)
            expect = (x * y) % q
            assert int(got) == expect
            assert barrett_reduce(x * y, q, mu, k) == expect
            assert barrett_reduce_single(x * y, q, mu1, k1) == expect

    @given(prime_and_operands())
    @settings(max_examples=60, deadline=None)
    def test_mulmod_vec_matches_montgomery(self, qab):
        q, a, b = qab
        mont = MontgomeryContext(q)
        out = mulmod_vec(a, b, q)
        for x, y, got in zip(a, b, out):
            x, y = int(x), int(y)
            assert int(got) == mont.from_mont(
                mont.mulmod(mont.to_mont(x), mont.to_mont(y)))

    @given(prime_and_operands())
    @settings(max_examples=60, deadline=None)
    def test_shoup_multiply_matches_oracles(self, qab):
        q, a, b = qab
        w = int(b[0])
        out = shoup_mulmod_vec(a, w, shoup_precompute(w, q), q)
        scalar_path = mulmod_vec(a, w, q)
        mu, k = barrett_precompute_single(q)
        for x, got, via_mulmod in zip(a, out, scalar_path):
            expect = (int(x) * w) % q
            assert int(got) == expect
            assert int(via_mulmod) == expect
            assert barrett_reduce_single(int(x) * w, q, mu, k) == expect

    @given(prime_and_operands())
    @settings(max_examples=40, deadline=None)
    def test_stacked_mulmod_matches_scalar(self, qab):
        q, a, b = qab
        # A mixed-width stack (30-bit + the drawn prime) must classify as
        # dword and stay exact on every row.
        q_small = 1032193
        moduli = (q_small, q)
        stack_a = stack_residues([a % q_small, a], moduli)
        stack_b = stack_residues([b % q_small, b], moduli)
        assert stack_native_class(moduli) == "dword"
        assert stack_a.dtype == np.int64
        out = mulmod_stack(stack_a, stack_b, moduli)
        for i, qi in enumerate(moduli):
            for j in range(N):
                assert int(out[i, j]) == \
                    (int(stack_a[i, j]) * int(stack_b[i, j])) % qi

    @given(prime_and_operands())
    @settings(max_examples=40, deadline=None)
    def test_object_oracle_agrees_under_force(self, qab):
        """The forced bignum path is the oracle the native path must equal."""
        q, a, b = qab
        native = mulmod_vec(a, b, q)
        with modmath.force_object_dtype():
            assert native_class(q) == "object"
            oracle = mulmod_vec(a, b, q)
        assert oracle.dtype == object
        assert np.array_equal(np.asarray(native, dtype=object), oracle)


class TestWordSplitHelpers:
    @given(st.lists(st.integers(0, (1 << 300) - 1), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_split_join_roundtrip(self, values):
        assert join_words(split_words(values)) == values

    @given(st.lists(st.integers(0, (1 << 300) - 1), min_size=1, max_size=8),
           st.sampled_from(DWORD_PRIMES))
    @settings(max_examples=60, deadline=None)
    def test_horner_fold_matches_mod(self, values, q):
        got = horner_fold_mod(split_words(values), q)
        assert got.dtype == np.int64
        assert [int(v) for v in got] == [v % q for v in values]

    def test_split_rejects_negative(self):
        with pytest.raises(ValueError):
            split_words([-1])


class TestDispatchBoundaries:
    def test_native_class_tiers(self):
        assert native_class((1 << 31) - 1) == "int64"
        assert native_class(1 << 31) == "dword"
        assert native_class(NATIVE_SAFE_MODULUS - 1) == "dword"
        assert native_class(NATIVE_SAFE_MODULUS) == "object"

    def test_61_bit_modulus_takes_object_path(self):
        """Just past the native bound: object fallback, still exact."""
        q = _prime_near((1 << 61) + (1 << 13), 62)
        assert limb_dtype(q) is object
        rng = np.random.default_rng(4)
        a = modmath.random_residues(N, q, rng)
        b = modmath.random_residues(N, q, rng)
        assert a.dtype == object
        out = mulmod_vec(a, b, q)
        assert [int(v) for v in out] == [(int(x) * int(y)) % q
                                         for x, y in zip(a, b)]

    def test_force_object_is_scoped(self):
        q = DWORD_PRIMES[0]
        assert native_class(q) == "dword"
        with modmath.force_object_dtype():
            assert native_class(q) == "object"
            assert limb_dtype(q) is object
        assert native_class(q) == "dword"

    def test_largest_residues_at_native_bound(self):
        """q-1 squared at the biggest 61-bit prime: the worst case for the
        128-bit Barrett estimate."""
        q = max(DWORD_PRIMES)
        assert q < NATIVE_SAFE_MODULUS
        a = np.array([q - 1, q - 2, 1, 0], dtype=np.int64)
        out = mulmod_vec(a, a, q)
        assert [int(v) for v in out] == [(int(x) * int(x)) % q for x in a]
