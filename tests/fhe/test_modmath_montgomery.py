"""Property tests for the vectorized Montgomery (REDC) kernels.

The Montgomery-domain EVAL fast path claims bit-identity with the plain
Barrett kernels: for every modulus width from 32 to 61 bits, converting
operands into Montgomery form, chaining REDC products in-domain, and
converting back must produce exactly the residues of the scalar
Python-int oracles (``MontgomeryContext`` and plain ``(a*b) % q``), on
the 1-D, stacked, and object-dtype (``force_object_dtype``) tiers alike.
Also covers the REDC constant identities and the Polynomial-level domain
guard rails (Montgomery limbs must never reach the NTT, scalar adds, or
the serializer).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe import CkksParameters, PolyContext
from repro.fhe.modmath import (MontgomeryContext, force_object_dtype,
                               from_mont_stack, from_mont_vec,
                               mont_mulmod_stack, mont_mulmod_vec,
                               mont_precompute_vec, mulmod_stack,
                               stack_native_class, stack_residues,
                               to_mont_stack, to_mont_vec)
from repro.fhe.poly import Representation
from repro.fhe.serialization import _poly_to_arrays

from test_modmath_dword import DWORD_PRIMES, N, prime_and_operands

Q_SMALL = 1032193  # 20-bit companion for mixed-width stacks


@st.composite
def prime_and_chain(draw):
    q = draw(st.sampled_from(DWORD_PRIMES))
    k = draw(st.integers(min_value=2, max_value=6))
    ops = [np.array(draw(st.lists(st.integers(0, q - 1),
                                  min_size=N, max_size=N)), dtype=np.int64)
           for _ in range(k)]
    return q, ops


class TestRedcConstants:
    @pytest.mark.parametrize("q", DWORD_PRIMES)
    def test_constant_identities(self, q):
        qprime, r_mod_q, r_shoup, r_inv = mont_precompute_vec(q)
        r = 1 << 64
        assert (qprime * q) % r == r - 1          # q' = -q^{-1} mod 2^64
        assert r_mod_q == r % q
        assert r_shoup == (r_mod_q << 64) // q
        assert (r_inv * r_mod_q) % q == 1

    def test_even_modulus_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            mont_precompute_vec(1 << 32)


class TestMontgomeryVec:
    @given(prime_and_operands())
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, qab):
        q, a, _ = qab
        back = from_mont_vec(to_mont_vec(a, q), q)
        assert np.array_equal(back, a)

    @given(prime_and_operands())
    @settings(max_examples=40, deadline=None)
    def test_in_domain_product_matches_scalar_oracle(self, qab):
        q, a, b = qab
        mont = MontgomeryContext(q)
        am, bm = to_mont_vec(a, q), to_mont_vec(b, q)
        prod_m = mont_mulmod_vec(am, bm, q)
        out = from_mont_vec(prod_m, q)
        for x, y, gm, got in zip(a, b, prod_m, out):
            x, y = int(x), int(y)
            # In-domain value against the explicit R = 2**64 bigint oracle
            # (MontgomeryContext uses R = 2**bitlen(q), so only its
            # plain-domain output is comparable).
            assert int(gm) == ((x * y) << 64) % q
            assert int(got) == mont.from_mont(
                mont.mulmod(mont.to_mont(x), mont.to_mont(y)))
            assert int(got) == (x * y) % q

    @given(prime_and_operands())
    @settings(max_examples=40, deadline=None)
    def test_mixed_domain_single_conversion(self, qab):
        """mont x plain -> plain: the one-conversion trick for constants."""
        q, a, b = qab
        out = mont_mulmod_vec(to_mont_vec(a, q), b, q)
        for x, y, got in zip(a, b, out):
            assert int(got) == (int(x) * int(y)) % q

    @given(prime_and_chain())
    @settings(max_examples=30, deadline=None)
    def test_chain_stays_exact(self, qops):
        """k-long in-domain chains: one REDC per link, exact at the end."""
        q, ops = qops
        acc = to_mont_vec(ops[0], q)
        for op in ops[1:]:
            acc = mont_mulmod_vec(acc, to_mont_vec(op, q), q)
        out = from_mont_vec(acc, q)
        for j in range(N):
            expect = 1
            for op in ops:
                expect = (expect * int(op[j])) % q
            assert int(out[j]) == expect

    @given(prime_and_operands())
    @settings(max_examples=20, deadline=None)
    def test_object_dtype_tier_matches_native(self, qab):
        q, a, b = qab
        native = from_mont_vec(
            mont_mulmod_vec(to_mont_vec(a, q), to_mont_vec(b, q), q), q)
        ao, bo = a.astype(object), b.astype(object)
        am_o, bm_o = to_mont_vec(ao, q), to_mont_vec(bo, q)
        # The Montgomery representation itself is tier-independent.
        assert np.array_equal(np.asarray(to_mont_vec(a, q), dtype=object),
                              np.asarray(am_o, dtype=object))
        obj = from_mont_vec(mont_mulmod_vec(am_o, bm_o, q), q)
        assert np.array_equal(np.asarray(native, dtype=object),
                              np.asarray(obj, dtype=object))


class TestMontgomeryStack:
    def _stacks(self, q, a, b):
        moduli = (Q_SMALL, q)
        sa = stack_residues([a % Q_SMALL, a], moduli)
        sb = stack_residues([b % Q_SMALL, b], moduli)
        return moduli, sa, sb

    @given(prime_and_operands())
    @settings(max_examples=30, deadline=None)
    def test_stack_matches_rowwise_vec(self, qab):
        q, a, b = qab
        moduli, sa, sb = self._stacks(q, a, b)
        assert stack_native_class(moduli) == "dword"
        am, bm = to_mont_stack(sa, moduli), to_mont_stack(sb, moduli)
        prod = mont_mulmod_stack(am, bm, moduli)
        out = from_mont_stack(prod, moduli)
        for i, qi in enumerate(moduli):
            assert np.array_equal(am[i], to_mont_vec(sa[i], qi))
            assert np.array_equal(
                prod[i],
                mont_mulmod_vec(to_mont_vec(sa[i], qi),
                                to_mont_vec(sb[i], qi), qi))
            assert np.array_equal(out[i], mulmod_stack(sa, sb, moduli)[i])

    @given(prime_and_operands())
    @settings(max_examples=15, deadline=None)
    def test_force_object_matches_native(self, qab):
        q, a, b = qab
        moduli, sa, sb = self._stacks(q, a, b)
        am = to_mont_stack(sa, moduli)
        native = from_mont_stack(
            mont_mulmod_stack(am, to_mont_stack(sb, moduli), moduli), moduli)
        with force_object_dtype():
            sa_o = stack_residues([a % Q_SMALL, a], moduli)
            sb_o = stack_residues([b % Q_SMALL, b], moduli)
            assert sa_o.dtype == object
            am_o = to_mont_stack(sa_o, moduli)
            assert np.array_equal(np.asarray(am, dtype=object),
                                  np.asarray(am_o, dtype=object))
            obj = from_mont_stack(
                mont_mulmod_stack(am_o, to_mont_stack(sb_o, moduli), moduli),
                moduli)
        assert np.array_equal(np.asarray(native, dtype=object),
                              np.asarray(obj, dtype=object))


@pytest.fixture(params=["reference", "stacked"])
def pctx(request):
    return PolyContext(CkksParameters.toy(), seed=7, backend=request.param)


class TestPolynomialDomain:
    """Guard rails: Montgomery limbs never cross a domain boundary."""

    def test_round_trip_and_flags(self, pctx):
        p = pctx.random_uniform(pctx.params.moduli)
        pm = p.to_mont()
        assert pm.mont and not p.mont
        assert pm.to_mont() is pm                 # idempotent
        back = pm.from_mont()
        assert not back.mont
        for x, y in zip(p.limbs, back.limbs):
            assert np.array_equal(np.asarray(x, dtype=object),
                                  np.asarray(y, dtype=object))

    def test_products_match_plain(self, pctx):
        a = pctx.random_uniform(pctx.params.moduli)
        b = pctx.random_uniform(pctx.params.moduli)
        plain = a * b
        both = (a.to_mont() * b.to_mont())
        assert both.mont
        one = a.to_mont() * b
        assert not one.mont
        for got in (both.from_mont(), one):
            for x, y in zip(plain.limbs, got.limbs):
                assert np.array_equal(np.asarray(x, dtype=object),
                                      np.asarray(y, dtype=object))

    def test_to_mont_requires_eval(self, pctx):
        p = pctx.random_uniform(pctx.params.moduli, Representation.COEFF)
        with pytest.raises(ValueError, match="EVAL"):
            p.to_mont()

    def test_ntt_conversion_blocked(self, pctx):
        pm = pctx.random_uniform(pctx.params.moduli).to_mont()
        with pytest.raises(ValueError, match="from_mont"):
            pm.to_coeff()

    def test_additive_domain_mismatch_blocked(self, pctx):
        p = pctx.random_uniform(pctx.params.moduli)
        with pytest.raises(ValueError, match="domain"):
            p.to_mont() + p

    def test_scalar_add_blocked(self, pctx):
        pm = pctx.random_uniform(pctx.params.moduli).to_mont()
        with pytest.raises(ValueError, match="plain-domain"):
            pm.scalar_add_per_limb([1] * len(pm.moduli))

    def test_serialization_blocked(self, pctx):
        pm = pctx.random_uniform(pctx.params.moduli).to_mont()
        with pytest.raises(ValueError, match="Montgomery"):
            _poly_to_arrays(pm, "c0", {})

    def test_additive_ops_stay_in_domain(self, pctx):
        a = pctx.random_uniform(pctx.params.moduli)
        b = pctx.random_uniform(pctx.params.moduli)
        am, bm = a.to_mont(), b.to_mont()
        # Montgomery form is additively closed: (aR + bR) = (a+b)R.
        plain = a + b
        got = (am + bm).from_mont()
        for x, y in zip(plain.limbs, got.limbs):
            assert np.array_equal(np.asarray(x, dtype=object),
                                  np.asarray(y, dtype=object))
        assert (am + bm).mont and (am - bm).mont and (-am).mont
