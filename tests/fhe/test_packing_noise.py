"""Tests for slot-packing utilities and the noise/level budget tracker."""

import numpy as np
import pytest

from repro.fhe import CkksContext
from repro.fhe.noise import LevelBudget, circuit_depth, measure_fresh_noise
from repro.fhe.packing import (inner_product, mask_slots, matrix_vector,
                               replicate, rotate_sum)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.toy(seed=51)


class TestPacking:
    def test_rotate_sum_window(self, ctx):
        n = ctx.params.num_slots
        v = np.zeros(n)
        v[:8] = np.arange(1, 9)
        out = rotate_sum(ctx.evaluator, ctx.encrypt(v), 8)
        assert abs(ctx.decrypt(out)[0].real - 36.0) < 1e-3

    def test_rotate_sum_multiple_windows(self, ctx):
        n = ctx.params.num_slots
        v = np.zeros(n)
        v[:4] = [1, 2, 3, 4]
        v[4:8] = [10, 20, 30, 40]
        out = rotate_sum(ctx.evaluator, ctx.encrypt(v), 4)
        dec = ctx.decrypt(out).real
        assert abs(dec[0] - 10.0) < 1e-3
        assert abs(dec[4] - 100.0) < 1e-3

    def test_rotate_sum_rejects_non_power_of_two(self, ctx):
        with pytest.raises(ValueError):
            rotate_sum(ctx.evaluator, ctx.encrypt([1.0]), 3)

    def test_replicate(self, ctx):
        n = ctx.params.num_slots
        v = np.zeros(n)
        v[0] = 2.5
        out = replicate(ctx.evaluator, ctx.encrypt(v), 4)
        dec = ctx.decrypt(out).real
        assert np.max(np.abs(dec[:4] - 2.5)) < 1e-3

    def test_mask_slots(self, ctx):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        keep = np.array([1, 0, 1, 0])
        out = mask_slots(ctx.evaluator, ctx.encoder, ctx.encrypt(v), keep)
        dec = ctx.decrypt(out)[:4].real
        assert np.max(np.abs(dec - v * keep)) < 1e-3

    def test_inner_product(self, ctx):
        a = np.array([0.5, -1.0, 2.0, 0.25])
        b = np.array([2.0, 3.0, -1.0, 4.0])
        out = inner_product(ctx.evaluator, ctx.encrypt(a), ctx.encrypt(b),
                            4)
        assert abs(ctx.decrypt(out)[0].real - float(a @ b)) < 1e-3

    def test_matrix_vector(self, ctx):
        n = ctx.params.num_slots
        rng = np.random.default_rng(2)
        m = np.zeros((n, n))
        m[:4, :4] = rng.normal(size=(4, 4))
        v = np.zeros(n)
        v[:4] = rng.uniform(-1, 1, 4)
        out = matrix_vector(ctx.evaluator, ctx.encoder, m, ctx.encrypt(v))
        assert np.max(np.abs(ctx.decrypt(out)[:4].real
                             - (m @ v)[:4])) < 1e-2


class TestBudget:
    def test_fresh_budget(self, ctx):
        budget = LevelBudget.fresh(ctx.params)
        assert budget.level == ctx.params.max_level
        assert budget.log_scale == ctx.params.scale_bits

    def test_mult_consumes_level(self, ctx):
        budget = LevelBudget.fresh(ctx.params).after_mult()
        assert budget.level == ctx.params.max_level - 1
        # Scale stays near Delta with stabilized primes.
        assert abs(budget.log_scale - ctx.params.scale_bits) < 1.5

    def test_budget_exhaustion_raises(self, ctx):
        budget = LevelBudget(ctx.params, 0, 29.0)
        with pytest.raises(ValueError):
            budget.after_mult()

    def test_multiplications_remaining(self, ctx):
        budget = LevelBudget.fresh(ctx.params)
        assert budget.multiplications_remaining() == ctx.params.max_level

    def test_rotation_free(self, ctx):
        budget = LevelBudget.fresh(ctx.params).after_rotation()
        assert budget.level == ctx.params.max_level

    def test_fresh_noise_floor(self, ctx):
        noise = measure_fresh_noise(ctx, trials=3)
        assert noise < 1e-4      # ~1.5e-6 typical at Delta = 2^29

    def test_circuit_depth_of_workloads(self):
        from repro.workloads import build_bootstrap_graph
        graph, _, _ = build_bootstrap_graph()
        depth = circuit_depth(graph)
        # The bootstrap pipeline consumes most of L_boot's levels.
        assert 10 <= depth <= 60
