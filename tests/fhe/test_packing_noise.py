"""Tests for slot-packing utilities and the noise/level budget tracker."""

import numpy as np
import pytest

from repro.fhe import CkksContext, SlotLayout
from repro.fhe.noise import LevelBudget, circuit_depth, measure_fresh_noise
from repro.fhe.packing import (inner_product, mask_slots, matrix_vector,
                               replicate, rotate_sum)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.toy(seed=51)


class TestSlotLayout:
    LAYOUT = SlotLayout(num_slots=512, width=8)

    def test_capacity_windows_offsets(self):
        assert self.LAYOUT.capacity == 64
        assert self.LAYOUT.offset(3) == 24
        assert self.LAYOUT.window(3) == slice(24, 32)
        assert self.LAYOUT.occupancy(32) == 0.5

    def test_for_params_uses_message_slots(self, ctx):
        layout = SlotLayout.for_params(ctx.params, 8)
        assert layout.num_slots == ctx.params.num_slots

    def test_validation(self):
        with pytest.raises(ValueError, match="power of two"):
            SlotLayout(num_slots=512, width=3)
        with pytest.raises(ValueError, match="power of two"):
            SlotLayout(num_slots=500, width=4)
        with pytest.raises(ValueError, match="exceeds"):
            SlotLayout(num_slots=8, width=16)
        with pytest.raises(ValueError):
            self.LAYOUT.offset(64)

    def test_pack_unpack_roundtrip(self):
        vectors = [np.arange(8, dtype=float) + 10 * i for i in range(5)]
        packed = self.LAYOUT.pack_many(vectors)
        assert packed.shape == (512,)
        assert not packed[5 * 8:].any()
        for original, back in zip(
                vectors, self.LAYOUT.unpack_many(packed, 5)):
            assert np.array_equal(original, back)

    def test_pack_zero_pads_short_vectors_and_take_trims(self):
        packed = self.LAYOUT.pack_many([[1.0, 2.0], [3.0]])
        assert np.array_equal(packed[:8], [1, 2, 0, 0, 0, 0, 0, 0])
        first, second = self.LAYOUT.unpack_many(packed, 2, take=1)
        assert first[0] == 1.0 and second[0] == 3.0

    def test_pack_promotes_complex(self):
        packed = self.LAYOUT.pack_many([[1.0 + 1.0j], [2.0]])
        assert np.iscomplexobj(packed)
        assert packed[0] == 1.0 + 1.0j

    def test_pack_rejects_overflow(self):
        with pytest.raises(ValueError, match="capacity"):
            self.LAYOUT.pack_many([np.zeros(8)] * 65)
        with pytest.raises(ValueError, match="width"):
            self.LAYOUT.pack_many([np.zeros(9)])
        with pytest.raises(ValueError, match="1-D"):
            self.LAYOUT.pack_many([np.zeros((2, 2))])

    def test_unpack_bounds(self):
        packed = self.LAYOUT.pack_many([np.ones(8)])
        with pytest.raises(ValueError, match="take"):
            self.LAYOUT.unpack_many(packed, 1, take=9)
        with pytest.raises(ValueError, match="capacity"):
            self.LAYOUT.unpack_many(packed, 65)

    def test_rotate_sum_is_window_local(self, ctx):
        """The property slot-batching rests on: each window's reduction
        sees only that window's slots."""
        layout = SlotLayout.for_params(ctx.params, 4)
        packed = layout.pack_many([[1, 2, 3, 4], [10, 20, 30, 40]])
        out = layout.rotate_sum(ctx.evaluator, ctx.encrypt(packed))
        dec = ctx.decrypt(out).real
        sums = layout.unpack_many(dec, 2, take=1)
        assert abs(sums[0][0] - 10.0) < 1e-3
        assert abs(sums[1][0] - 100.0) < 1e-3

    def test_replicate_broadcasts_within_windows(self, ctx):
        layout = SlotLayout.for_params(ctx.params, 4)
        packed = layout.pack_many([[2.5], [-1.5]])
        out = layout.replicate(ctx.evaluator, ctx.encrypt(packed))
        dec = ctx.decrypt(out).real
        windows = layout.unpack_many(dec, 2)
        assert np.max(np.abs(windows[0] - 2.5)) < 1e-3
        assert np.max(np.abs(windows[1] + 1.5)) < 1e-3


class TestPacking:
    def test_rotate_sum_window(self, ctx):
        n = ctx.params.num_slots
        v = np.zeros(n)
        v[:8] = np.arange(1, 9)
        out = rotate_sum(ctx.evaluator, ctx.encrypt(v), 8)
        assert abs(ctx.decrypt(out)[0].real - 36.0) < 1e-3

    def test_rotate_sum_multiple_windows(self, ctx):
        n = ctx.params.num_slots
        v = np.zeros(n)
        v[:4] = [1, 2, 3, 4]
        v[4:8] = [10, 20, 30, 40]
        out = rotate_sum(ctx.evaluator, ctx.encrypt(v), 4)
        dec = ctx.decrypt(out).real
        assert abs(dec[0] - 10.0) < 1e-3
        assert abs(dec[4] - 100.0) < 1e-3

    def test_rotate_sum_rejects_non_power_of_two(self, ctx):
        with pytest.raises(ValueError):
            rotate_sum(ctx.evaluator, ctx.encrypt([1.0]), 3)

    def test_replicate(self, ctx):
        n = ctx.params.num_slots
        v = np.zeros(n)
        v[0] = 2.5
        out = replicate(ctx.evaluator, ctx.encrypt(v), 4)
        dec = ctx.decrypt(out).real
        assert np.max(np.abs(dec[:4] - 2.5)) < 1e-3

    def test_mask_slots(self, ctx):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        keep = np.array([1, 0, 1, 0])
        out = mask_slots(ctx.evaluator, ctx.encoder, ctx.encrypt(v), keep)
        dec = ctx.decrypt(out)[:4].real
        assert np.max(np.abs(dec - v * keep)) < 1e-3

    def test_inner_product(self, ctx):
        a = np.array([0.5, -1.0, 2.0, 0.25])
        b = np.array([2.0, 3.0, -1.0, 4.0])
        out = inner_product(ctx.evaluator, ctx.encrypt(a), ctx.encrypt(b),
                            4)
        assert abs(ctx.decrypt(out)[0].real - float(a @ b)) < 1e-3

    def test_matrix_vector(self, ctx):
        n = ctx.params.num_slots
        rng = np.random.default_rng(2)
        m = np.zeros((n, n))
        m[:4, :4] = rng.normal(size=(4, 4))
        v = np.zeros(n)
        v[:4] = rng.uniform(-1, 1, 4)
        out = matrix_vector(ctx.evaluator, ctx.encoder, m, ctx.encrypt(v))
        assert np.max(np.abs(ctx.decrypt(out)[:4].real
                             - (m @ v)[:4])) < 1e-2


class TestBudget:
    def test_fresh_budget(self, ctx):
        budget = LevelBudget.fresh(ctx.params)
        assert budget.level == ctx.params.max_level
        assert budget.log_scale == ctx.params.scale_bits

    def test_mult_consumes_level(self, ctx):
        budget = LevelBudget.fresh(ctx.params).after_mult()
        assert budget.level == ctx.params.max_level - 1
        # Scale stays near Delta with stabilized primes.
        assert abs(budget.log_scale - ctx.params.scale_bits) < 1.5

    def test_budget_exhaustion_raises(self, ctx):
        budget = LevelBudget(ctx.params, 0, 29.0)
        with pytest.raises(ValueError):
            budget.after_mult()

    def test_multiplications_remaining(self, ctx):
        budget = LevelBudget.fresh(ctx.params)
        assert budget.multiplications_remaining() == ctx.params.max_level

    def test_rotation_free(self, ctx):
        budget = LevelBudget.fresh(ctx.params).after_rotation()
        assert budget.level == ctx.params.max_level

    def test_fresh_noise_floor(self, ctx):
        noise = measure_fresh_noise(ctx, trials=3)
        assert noise < 1e-4      # ~1.5e-6 typical at Delta = 2^29

    def test_circuit_depth_of_workloads(self):
        from repro.workloads import build_bootstrap_graph
        graph, _, _ = build_bootstrap_graph()
        depth = circuit_depth(graph)
        # The bootstrap pipeline consumes most of L_boot's levels.
        assert 10 <= depth <= 60
