"""Integration tests: encrypt -> evaluate -> decrypt for every Table 2 block."""

import numpy as np
import pytest

from repro.fhe import CkksContext


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.toy(seed=11)


@pytest.fixture(scope="module")
def vectors(ctx):
    rng = np.random.default_rng(7)
    n = ctx.params.num_slots
    return (rng.uniform(-1, 1, n), rng.uniform(-1, 1, n))


def _err(a, b):
    return float(np.max(np.abs(np.asarray(a) - np.asarray(b))))


class TestEncryptDecrypt:
    def test_fresh_roundtrip(self, ctx, vectors):
        v, _ = vectors
        assert _err(ctx.decrypt(ctx.encrypt(v)).real, v) < 1e-4

    def test_complex_roundtrip(self, ctx):
        z = np.array([0.5 + 0.25j, -1.0 - 0.75j])
        assert _err(ctx.decrypt(ctx.encrypt(z))[:2], z) < 1e-4

    def test_encrypt_at_lower_level(self, ctx, vectors):
        v, _ = vectors
        ct = ctx.encrypt(v, level=1)
        assert ct.level == 1
        assert _err(ctx.decrypt(ct).real, v) < 1e-4

    def test_decryption_of_wrong_key_fails(self, vectors):
        v, _ = vectors
        ctx_a = CkksContext.toy(seed=1)
        ctx_b = CkksContext.toy(seed=2)
        ct = ctx_a.encrypt(v)
        garbage = ctx_b.decrypt(ct).real
        assert _err(garbage, v) > 1.0


class TestTable2Blocks:
    """One test per HE building block in paper Table 2."""

    def test_scalar_add(self, ctx, vectors):
        v, _ = vectors
        out = ctx.evaluator.scalar_add(ctx.encrypt(v), 1.5)
        assert _err(ctx.decrypt(out).real, v + 1.5) < 1e-4

    def test_scalar_add_complex(self, ctx, vectors):
        v, _ = vectors
        out = ctx.evaluator.scalar_add(ctx.encrypt(v), 0.5 + 0.5j)
        assert _err(ctx.decrypt(out), v + 0.5 + 0.5j) < 1e-4

    def test_scalar_mult(self, ctx, vectors):
        v, _ = vectors
        out = ctx.evaluator.scalar_mult(ctx.encrypt(v), -2.5)
        assert out.level == ctx.params.max_level - 1
        assert _err(ctx.decrypt(out).real, v * -2.5) < 1e-4

    def test_scalar_mult_int(self, ctx, vectors):
        v, _ = vectors
        out = ctx.evaluator.scalar_mult_int(ctx.encrypt(v), 3)
        assert out.level == ctx.params.max_level  # no level consumed
        assert _err(ctx.decrypt(out).real, v * 3) < 1e-4

    def test_poly_add(self, ctx, vectors):
        v1, v2 = vectors
        ct = ctx.encrypt(v1)
        pt = ctx.encoder.encode(v2, ct.scale)
        out = ctx.evaluator.poly_add(ct, pt)
        assert _err(ctx.decrypt(out).real, v1 + v2) < 1e-4

    def test_poly_mult(self, ctx, vectors):
        v1, v2 = vectors
        ct = ctx.encrypt(v1)
        pt = ctx.encoder.encode(v2)
        out = ctx.evaluator.poly_mult(ct, pt)
        assert out.level == ctx.params.max_level - 1  # rescaled
        assert _err(ctx.decrypt(out).real, v1 * v2) < 1e-4

    def test_he_add(self, ctx, vectors):
        v1, v2 = vectors
        out = ctx.evaluator.he_add(ctx.encrypt(v1), ctx.encrypt(v2))
        assert _err(ctx.decrypt(out).real, v1 + v2) < 1e-4

    def test_he_sub(self, ctx, vectors):
        v1, v2 = vectors
        out = ctx.evaluator.he_sub(ctx.encrypt(v1), ctx.encrypt(v2))
        assert _err(ctx.decrypt(out).real, v1 - v2) < 1e-4

    def test_he_mult(self, ctx, vectors):
        v1, v2 = vectors
        out = ctx.evaluator.he_mult(ctx.encrypt(v1), ctx.encrypt(v2))
        assert out.level == ctx.params.max_level - 1
        assert _err(ctx.decrypt(out).real, v1 * v2) < 1e-4

    def test_he_square(self, ctx, vectors):
        v, _ = vectors
        out = ctx.evaluator.he_square(ctx.encrypt(v))
        assert _err(ctx.decrypt(out).real, v * v) < 1e-4

    def test_he_rotate(self, ctx, vectors):
        v, _ = vectors
        for r in (1, 2, 7, ctx.params.num_slots - 1):
            out = ctx.evaluator.he_rotate(ctx.encrypt(v), r)
            assert _err(ctx.decrypt(out).real, np.roll(v, -r)) < 1e-4, \
                f"rotation {r}"

    def test_he_rotate_zero_is_identity(self, ctx, vectors):
        v, _ = vectors
        ct = ctx.encrypt(v)
        out = ctx.evaluator.he_rotate(ct, 0)
        assert _err(ctx.decrypt(out).real, v) < 1e-4

    def test_he_conjugate(self, ctx):
        z = np.array([0.5 + 0.25j, -1.0 - 0.75j, 0.1 + 0.9j])
        out = ctx.evaluator.he_conjugate(ctx.encrypt(z))
        assert _err(ctx.decrypt(out)[:3], np.conj(z)) < 1e-4

    def test_he_rescale(self, ctx, vectors):
        v1, v2 = vectors
        raw = ctx.evaluator.he_mult(ctx.encrypt(v1), ctx.encrypt(v2),
                                    rescale=False)
        assert raw.level == ctx.params.max_level
        rescaled = ctx.evaluator.rescale(raw)
        assert rescaled.level == ctx.params.max_level - 1
        assert _err(ctx.decrypt(rescaled).real, v1 * v2) < 1e-4

    def test_rescale_at_level_zero_rejected(self, ctx, vectors):
        v, _ = vectors
        ct = ctx.encrypt(v, level=0)
        with pytest.raises(ValueError):
            ctx.evaluator.rescale(ct)


class TestComposition:
    def test_depth_chain(self, ctx, vectors):
        """(v^2)^2 across two levels."""
        v, _ = vectors
        v = v * 0.9
        ct = ctx.encrypt(v)
        sq = ctx.evaluator.he_square(ct)
        sq2 = ctx.evaluator.he_square(sq)
        assert _err(ctx.decrypt(sq2).real, v ** 4) < 1e-3

    def test_mixed_level_add(self, ctx, vectors):
        v1, v2 = vectors
        deep = ctx.evaluator.he_mult(ctx.encrypt(v1), ctx.encrypt(v1))
        shallow = ctx.encrypt(v2, level=deep.level, scale=deep.scale)
        out = ctx.evaluator.he_add(deep, shallow)
        assert _err(ctx.decrypt(out).real, v1 * v1 + v2) < 1e-3

    def test_rotation_composition(self, ctx, vectors):
        v, _ = vectors
        ct = ctx.encrypt(v)
        once = ctx.evaluator.he_rotate(ctx.evaluator.he_rotate(ct, 3), 4)
        direct = ctx.evaluator.he_rotate(ct, 7)
        assert _err(ctx.decrypt(once).real, ctx.decrypt(direct).real) < 1e-3

    def test_inner_product_via_rotations(self, ctx):
        """Rotate-and-add sum reduction, the HE-LR workhorse."""
        n = ctx.params.num_slots
        v = np.zeros(n)
        v[:8] = np.arange(1, 9) * 0.1
        ct = ctx.encrypt(v)
        acc = ct
        shift = 1
        while shift < 8:
            acc = ctx.evaluator.he_add(acc,
                                       ctx.evaluator.he_rotate(acc, shift))
            shift *= 2
        total = ctx.decrypt(acc)[0].real
        assert abs(total - v[:8].sum()) < 1e-3

    def test_scale_mismatch_add_rejected(self, ctx, vectors):
        v1, v2 = vectors
        ct1 = ctx.encrypt(v1)
        ct2 = ctx.encrypt(v2, scale=ctx.params.scale * 2)
        with pytest.raises(ValueError):
            ctx.evaluator.he_add(ct1, ct2)

    def test_mod_drop(self, ctx, vectors):
        v, _ = vectors
        ct = ctx.encrypt(v)
        dropped = ctx.evaluator.mod_drop(ct, 2)
        assert dropped.level == ct.level - 2
        assert _err(ctx.decrypt(dropped).real, v) < 1e-4
