"""Tests for ring elements: representation changes, ring axioms,
automorphisms."""

import numpy as np
import pytest

from repro.fhe.ntt import negacyclic_convolution_naive
from repro.fhe.params import CkksParameters
from repro.fhe.poly import (PolyContext, Representation,
                            conjugation_galois_element,
                            rotation_galois_element)


@pytest.fixture(scope="module")
def context():
    return PolyContext(CkksParameters.toy(), seed=42)


@pytest.fixture(scope="module")
def moduli(context):
    return context.params.moduli[:2]


class TestRepresentation:
    def test_roundtrip(self, context, moduli):
        p = context.random_uniform(moduli, Representation.COEFF)
        back = p.to_eval().to_coeff()
        for a, b in zip(p.limbs, back.limbs):
            assert np.array_equal(a, b)

    def test_idempotent_conversions(self, context, moduli):
        p = context.random_uniform(moduli, Representation.EVAL)
        assert p.to_eval() is p
        q = p.to_coeff()
        assert q.to_coeff() is q

    def test_mul_requires_eval(self, context, moduli):
        p = context.random_uniform(moduli, Representation.COEFF)
        with pytest.raises(ValueError):
            _ = p * p

    def test_incompatible_bases_rejected(self, context):
        p1 = context.random_uniform(context.params.moduli[:2])
        p2 = context.random_uniform(context.params.moduli[:3])
        with pytest.raises(ValueError):
            _ = p1 + p2


class TestRingAxioms:
    def test_addition_commutes(self, context, moduli):
        a = context.random_uniform(moduli)
        b = context.random_uniform(moduli)
        lhs, rhs = a + b, b + a
        for x, y in zip(lhs.limbs, rhs.limbs):
            assert np.array_equal(x, y)

    def test_multiplication_commutes(self, context, moduli):
        a = context.random_uniform(moduli)
        b = context.random_uniform(moduli)
        lhs, rhs = a * b, b * a
        for x, y in zip(lhs.limbs, rhs.limbs):
            assert np.array_equal(x, y)

    def test_distributivity(self, context, moduli):
        a = context.random_uniform(moduli)
        b = context.random_uniform(moduli)
        c = context.random_uniform(moduli)
        lhs = a * (b + c)
        rhs = a * b + a * c
        for x, y in zip(lhs.limbs, rhs.limbs):
            assert np.array_equal(x, y)

    def test_additive_inverse(self, context, moduli):
        a = context.random_uniform(moduli)
        zero = a + (-a)
        for limb in zero.limbs:
            assert not limb.any()

    def test_sub_matches_add_neg(self, context, moduli):
        a = context.random_uniform(moduli)
        b = context.random_uniform(moduli)
        lhs = a - b
        rhs = a + (-b)
        for x, y in zip(lhs.limbs, rhs.limbs):
            assert np.array_equal(x, y)

    def test_eval_mul_matches_schoolbook(self, context, moduli):
        a = context.random_uniform(moduli, Representation.COEFF)
        b = context.random_uniform(moduli, Representation.COEFF)
        prod = (a.to_eval() * b.to_eval()).to_coeff()
        # Full schoolbook check on one limb keeps runtime bounded.
        q = moduli[0]
        expected = negacyclic_convolution_naive(a.limbs[0], b.limbs[0], q)
        assert np.array_equal(prod.limbs[0], expected)


class TestScalarOps:
    def test_scalar_mul(self, context, moduli):
        a = context.random_uniform(moduli)
        out = a.scalar_mul(7)
        expected = a + a + a + a + a + a + a
        for x, y in zip(out.limbs, expected.limbs):
            assert np.array_equal(x, y)

    def test_scalar_mul_per_limb(self, context, moduli):
        a = context.random_uniform(moduli)
        out = a.scalar_mul_per_limb([3, 5])
        for limb, src, s, q in zip(out.limbs, a.limbs, [3, 5], moduli):
            assert np.array_equal(limb, (src * s) % q)

    def test_scalar_mul_per_limb_length_checked(self, context, moduli):
        a = context.random_uniform(moduli)
        with pytest.raises(ValueError):
            a.scalar_mul_per_limb([1])


class TestAutomorphism:
    def test_requires_coeff(self, context, moduli):
        a = context.random_uniform(moduli, Representation.EVAL)
        with pytest.raises(ValueError):
            a.automorphism(5)

    def test_rejects_even_element(self, context, moduli):
        a = context.random_uniform(moduli, Representation.COEFF)
        with pytest.raises(ValueError):
            a.automorphism(4)

    def test_identity(self, context, moduli):
        a = context.random_uniform(moduli, Representation.COEFF)
        out = a.automorphism(1)
        for x, y in zip(out.limbs, a.limbs):
            assert np.array_equal(x, y)

    def test_composition_law(self, context, moduli):
        """psi_g1 o psi_g2 = psi_(g1*g2 mod 2N)."""
        n2 = 2 * context.params.ring_degree
        a = context.random_uniform(moduli, Representation.COEFF)
        g1, g2 = 5, 25
        lhs = a.automorphism(g2).automorphism(g1)
        rhs = a.automorphism((g1 * g2) % n2)
        for x, y in zip(lhs.limbs, rhs.limbs):
            assert np.array_equal(x, y)

    def test_conjugation_is_involution(self, context, moduli):
        g = conjugation_galois_element(context.params.ring_degree)
        a = context.random_uniform(moduli, Representation.COEFF)
        back = a.automorphism(g).automorphism(g)
        for x, y in zip(back.limbs, a.limbs):
            assert np.array_equal(x, y)

    def test_ring_homomorphism(self, context, moduli):
        """automorphism(a*b) == automorphism(a) * automorphism(b)."""
        g = rotation_galois_element(3, context.params.ring_degree)
        a = context.random_uniform(moduli, Representation.COEFF)
        b = context.random_uniform(moduli, Representation.COEFF)
        prod = (a.to_eval() * b.to_eval()).to_coeff()
        lhs = prod.automorphism(g)
        rhs = (a.automorphism(g).to_eval()
               * b.automorphism(g).to_eval()).to_coeff()
        for x, y in zip(lhs.limbs, rhs.limbs):
            assert np.array_equal(x, y)

    def test_rotation_galois_element_group(self, context):
        n = context.params.ring_degree
        g1 = rotation_galois_element(1, n)
        g5 = rotation_galois_element(5, n)
        composed = 1
        for _ in range(5):
            composed = (composed * g1) % (2 * n)
        assert composed == g5


class TestSamplers:
    def test_ternary_weight(self, context, moduli):
        p = context.random_ternary(moduli, hamming_weight=32)
        coeffs = p.limbs[0]
        q = moduli[0]
        nonzero = np.count_nonzero(coeffs)
        assert nonzero == 32
        assert all(int(c) in (0, 1, q - 1) for c in coeffs)

    def test_gaussian_is_small(self, context, moduli):
        p = context.random_gaussian(moduli, sigma=3.2)
        q = moduli[0]
        centered = [int(c) if int(c) < q // 2 else int(c) - q
                    for c in p.limbs[0]]
        assert max(abs(c) for c in centered) < 8 * 3.2

    def test_limb_consistency(self, context, moduli):
        """All limbs of a sampled small poly represent the same integer."""
        p = context.random_gaussian(moduli, sigma=3.2)
        q0, q1 = moduli
        for c0, c1 in zip(p.limbs[0], p.limbs[1]):
            v0 = int(c0) if int(c0) < q0 // 2 else int(c0) - q0
            v1 = int(c1) if int(c1) < q1 // 2 else int(c1) - q1
            assert v0 == v1
