"""Tests for prime generation and the negacyclic NTT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe import modmath
from repro.fhe.ntt import (NttContext, bit_reverse, bit_reverse_permutation,
                           negacyclic_convolution_naive)
from repro.fhe.primes import (find_primitive_root, generate_ntt_primes,
                              is_prime, primitive_nth_root)


class TestPrimes:
    def test_small_primes(self):
        known = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41}
        for n in range(2, 43):
            assert is_prime(n) == (n in known)

    def test_large_known_prime(self):
        assert is_prime(2**61 - 1)          # Mersenne prime
        assert not is_prime(2**61 + 1)

    @pytest.mark.parametrize("bits,n", [(30, 1 << 10), (30, 1 << 12),
                                        (54, 1 << 16)])
    def test_generated_primes_are_ntt_friendly(self, bits, n):
        primes = generate_ntt_primes(4, bits, n)
        assert len(set(primes)) == 4
        for q in primes:
            assert is_prime(q)
            assert q.bit_length() == bits
            assert (q - 1) % (2 * n) == 0

    def test_ascending_generation(self):
        primes = generate_ntt_primes(3, 30, 1 << 10, descending=False)
        assert primes == sorted(primes)
        for q in primes:
            assert is_prime(q) and (q - 1) % (1 << 11) == 0

    def test_primitive_root_order(self):
        q = generate_ntt_primes(1, 30, 1 << 10)[0]
        root = primitive_nth_root(q, 2048)
        assert pow(root, 2048, q) == 1
        assert pow(root, 1024, q) == q - 1  # exact order 2048

    def test_primitive_root_rejects_bad_order(self):
        with pytest.raises(ValueError):
            primitive_nth_root(17, 7)

    def test_find_primitive_root_small(self):
        assert find_primitive_root(17) == 3


class TestBitReverse:
    @given(st.integers(min_value=0, max_value=255))
    def test_involution(self, v):
        assert bit_reverse(bit_reverse(v, 8), 8) == v

    def test_permutation_is_bijection(self):
        perm = bit_reverse_permutation(64)
        assert sorted(perm.tolist()) == list(range(64))


@pytest.fixture(scope="module", params=[(1 << 6, 30), (1 << 8, 30)])
def ntt_ctx(request):
    n, bits = request.param
    q = generate_ntt_primes(1, bits, n)[0]
    return NttContext(q, n)


class TestNtt:
    def test_roundtrip(self, ntt_ctx):
        rng = np.random.default_rng(1)
        a = modmath.random_residues(ntt_ctx.n, ntt_ctx.q, rng)
        back = ntt_ctx.inverse(ntt_ctx.forward(a))
        assert np.array_equal(back, a)

    def test_forward_of_constant_is_constant_vector(self, ntt_ctx):
        a = np.zeros(ntt_ctx.n, dtype=np.int64)
        a[0] = 5
        f = ntt_ctx.forward(a)
        assert all(int(v) == 5 for v in f)

    def test_linearity(self, ntt_ctx):
        rng = np.random.default_rng(2)
        a = modmath.random_residues(ntt_ctx.n, ntt_ctx.q, rng)
        b = modmath.random_residues(ntt_ctx.n, ntt_ctx.q, rng)
        lhs = ntt_ctx.forward(modmath.addmod_vec(a, b, ntt_ctx.q))
        rhs = modmath.addmod_vec(ntt_ctx.forward(a), ntt_ctx.forward(b),
                                 ntt_ctx.q)
        assert np.array_equal(lhs, rhs)

    def test_convolution_theorem(self, ntt_ctx):
        rng = np.random.default_rng(3)
        a = modmath.random_residues(ntt_ctx.n, ntt_ctx.q, rng)
        b = modmath.random_residues(ntt_ctx.n, ntt_ctx.q, rng)
        fast = ntt_ctx.negacyclic_multiply(a, b)
        slow = negacyclic_convolution_naive(a, b, ntt_ctx.q)
        assert np.array_equal(fast, slow)

    def test_negacyclic_wraparound_sign(self, ntt_ctx):
        # x^(n-1) * x = x^n = -1 in the ring.
        n, q = ntt_ctx.n, ntt_ctx.q
        a = np.zeros(n, dtype=np.int64)
        b = np.zeros(n, dtype=np.int64)
        a[n - 1] = 1
        b[1] = 1
        prod = ntt_ctx.negacyclic_multiply(a, b)
        expected = np.zeros(n, dtype=np.int64)
        expected[0] = q - 1
        assert np.array_equal(prod, expected)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            NttContext(97, 48)

    def test_rejects_incompatible_prime(self):
        with pytest.raises(ValueError):
            NttContext(97, 64)  # 96 not divisible by 128

    def test_large_word_ntt_roundtrip(self):
        """Exercise the paper's 54-bit word size (object-dtype path)."""
        n = 1 << 5
        q = generate_ntt_primes(1, 54, n)[0]
        ctx = NttContext(q, n)
        rng = np.random.default_rng(4)
        a = modmath.random_residues(n, q, rng)
        assert [int(v) for v in ctx.inverse(ctx.forward(a))] == \
            [int(v) for v in a]

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.integers(min_value=0, max_value=2**30 - 1),
                    min_size=64, max_size=64),
           st.lists(st.integers(min_value=0, max_value=2**30 - 1),
                    min_size=64, max_size=64))
    def test_convolution_property(self, a_list, b_list):
        n = 64
        q = generate_ntt_primes(1, 30, n)[0]
        ctx = NttContext(q, n)
        a = np.array([v % q for v in a_list], dtype=np.int64)
        b = np.array([v % q for v in b_list], dtype=np.int64)
        fast = ctx.negacyclic_multiply(a, b)
        slow = negacyclic_convolution_naive(a, b, q)
        assert np.array_equal(fast, slow)
