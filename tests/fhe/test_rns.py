"""Tests for the RNS basis: CRT composition and base conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fhe.primes import generate_ntt_primes
from repro.fhe.rns import RnsBasis

PRIMES_30 = generate_ntt_primes(6, 30, 1 << 8, descending=False)
PRIMES_BIG = generate_ntt_primes(3, 54, 1 << 8)


@pytest.fixture(scope="module")
def basis():
    return RnsBasis(PRIMES_30[:4])


class TestCrt:
    def test_compose_decompose_roundtrip(self, basis):
        rng = np.random.default_rng(0)
        for _ in range(20):
            value = int(rng.integers(0, 1 << 60)) % basis.big_modulus
            assert basis.compose(basis.decompose(value)) == value

    @settings(deadline=None)
    @given(st.integers(min_value=0))
    def test_compose_decompose_property(self, value):
        basis = RnsBasis(PRIMES_30[:3])
        value %= basis.big_modulus
        assert basis.compose(basis.decompose(value)) == value

    def test_compose_centered_range(self, basis):
        q = basis.big_modulus
        for value in [0, 1, q // 2, q // 2 + 1, q - 1]:
            centered = basis.compose_centered(basis.decompose(value))
            assert -q // 2 <= centered <= q // 2
            assert centered % q == value

    def test_decompose_vec_matches_scalar(self, basis):
        values = [12345, 0, basis.big_modulus - 1, 987654321]
        limbs = basis.decompose_vec(values)
        for i, v in enumerate(values):
            assert [int(limb[i]) for limb in limbs] == basis.decompose(v)

    def test_compose_vec(self, basis):
        values = [3, 1 << 40, basis.big_modulus - 7]
        limbs = basis.decompose_vec(values)
        assert basis.compose_vec(limbs) == values

    def test_distinct_primes_required(self):
        with pytest.raises(ValueError):
            RnsBasis([17, 17])

    def test_wrong_residue_count_rejected(self, basis):
        with pytest.raises(ValueError):
            basis.compose([1, 2])

    def test_big_modulus_is_product(self, basis):
        prod = 1
        for q in basis.primes:
            prod *= q
        assert basis.big_modulus == prod


class TestBaseConversion:
    def test_exact_conversion_matches_centered_crt(self, basis):
        rng = np.random.default_rng(1)
        values = [int(v) % basis.big_modulus
                  for v in rng.integers(0, 1 << 62, size=16)]
        limbs = basis.decompose_vec(values)
        targets = PRIMES_30[4:6]
        out = basis.convert_exact(limbs, targets)
        for i, v in enumerate(values):
            centered = v if v <= basis.big_modulus // 2 \
                else v - basis.big_modulus
            for t, p in enumerate(targets):
                assert int(out[t][i]) == centered % p

    def test_approx_conversion_overshoot_bounded(self, basis):
        """convert_approx = x + e*Q mod p with 0 <= e < basis size."""
        rng = np.random.default_rng(2)
        values = [int(v) % basis.big_modulus
                  for v in rng.integers(0, 1 << 62, size=32)]
        limbs = basis.decompose_vec(values)
        p = PRIMES_30[5]
        out = basis.convert_approx(limbs, [p])[0]
        for i, v in enumerate(values):
            candidates = {(v + e * basis.big_modulus) % p
                          for e in range(basis.size + 1)}
            assert int(out[i]) % p in candidates

    def test_approx_matches_exact_up_to_q_multiple(self, basis):
        """convert_approx differs from convert_exact by a multiple of Q
        (the overshoot e*Q plus the centering offset)."""
        rng = np.random.default_rng(3)
        values = [int(v) % basis.big_modulus
                  for v in rng.integers(0, 1 << 62, size=16)]
        limbs = basis.decompose_vec(values)
        p = PRIMES_30[5]
        approx = basis.convert_approx(limbs, [p])[0]
        exact = basis.convert_exact(limbs, [p])[0]
        q_mod_p = basis.big_modulus % p
        for x_a, x_e in zip(approx, exact):
            diff = (int(x_a) - int(x_e)) % p
            candidates = {(e * q_mod_p) % p for e in range(basis.size + 2)}
            assert diff in candidates

    def test_paper_word_native_path(self):
        """54-bit basis: the word-split native lift stays exact."""
        basis = RnsBasis(PRIMES_BIG[:2])
        values = [int(basis.big_modulus // 3), 12345678901234567]
        limbs = basis.decompose_vec(values)
        assert all(np.asarray(limb).dtype == np.int64 for limb in limbs)
        out = basis.convert_exact(limbs, [PRIMES_BIG[2]])[0]
        for i, v in enumerate(values):
            centered = v if v <= basis.big_modulus // 2 \
                else v - basis.big_modulus
            assert int(out[i]) == centered % PRIMES_BIG[2]

    def test_61_bit_object_fallback(self):
        """62-bit basis: past the native bound the object path is used."""
        primes = generate_ntt_primes(3, 62, 1 << 8)
        basis = RnsBasis(primes[:2])
        values = [0, 1, int(basis.big_modulus - 1),
                  int(basis.big_modulus // 7)]
        limbs = basis.decompose_vec(values)
        assert basis.compose_vec(limbs) == values
        out = basis.convert_exact(limbs, [primes[2]])[0]
        for i, v in enumerate(values):
            centered = v if v <= basis.big_modulus // 2 \
                else v - basis.big_modulus
            assert int(out[i]) == centered % primes[2]

    def test_subbasis(self, basis):
        sub = basis.subbasis(2)
        assert sub.primes == basis.primes[:2]
        assert sub.big_modulus == basis.primes[0] * basis.primes[1]
