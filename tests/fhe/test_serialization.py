"""Tests for ciphertext serialization."""

import numpy as np
import pytest

from repro.fhe import CkksContext, CkksParameters, Polynomial
from repro.fhe.ciphertext import Ciphertext
from repro.fhe.serialization import (deserialize_ciphertext,
                                     serialize_ciphertext,
                                     serialized_size_matches_model)

#: Small ring, 54-bit word: every modulus is >= 2**31, so limbs must use
#: object dtype end to end (the paper-word regime of the dtype convention).
PARAMS_54 = CkksParameters._build(ring_degree=1 << 6, scale_bits=50,
                                  prime_bits=54, max_level=3, boot_levels=2,
                                  dnum=2, fft_iterations=1)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.toy(seed=71)


class TestSerialization:
    def test_roundtrip_preserves_plaintext(self, ctx):
        v = np.array([0.5, -0.75, 1.25])
        ct = ctx.encrypt(v)
        blob = serialize_ciphertext(ct)
        back = deserialize_ciphertext(blob, ctx.keygen.context)
        assert np.max(np.abs(ctx.decrypt(back)[:3].real - v)) < 1e-4

    def test_roundtrip_preserves_metadata(self, ctx):
        ct = ctx.encrypt([1.0], level=2)
        back = deserialize_ciphertext(serialize_ciphertext(ct),
                                      ctx.keygen.context)
        assert back.level == 2
        assert back.scale == ct.scale
        assert back.c0.moduli == ct.c0.moduli

    def test_roundtrip_supports_further_compute(self, ctx):
        v = np.array([0.5, 0.25])
        ct = deserialize_ciphertext(
            serialize_ciphertext(ctx.encrypt(v)), ctx.keygen.context)
        sq = ctx.evaluator.he_square(ct)
        assert np.max(np.abs(ctx.decrypt(sq)[:2].real - v ** 2)) < 1e-3

    def test_wrong_ring_rejected(self, ctx):
        other = CkksContext.test(seed=72)
        blob = serialize_ciphertext(ctx.encrypt([1.0]))
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob, other.keygen.context)

    def test_size_sanity(self, ctx):
        ct = ctx.encrypt([0.1] * 16)
        assert serialized_size_matches_model(ct, ctx.params)

    def test_blob_is_bytes(self, ctx):
        blob = serialize_ciphertext(ctx.encrypt([1.0]))
        assert isinstance(blob, bytes)
        assert len(blob) > 1000

    def test_empty_blob_fails_size_model(self, ctx, monkeypatch):
        """A truncated/empty wire image must fall below the lower bound."""
        import repro.fhe.serialization as ser
        ct = ctx.encrypt([0.5] * 8)
        monkeypatch.setattr(ser, "serialize_ciphertext", lambda _ct: b"")
        assert not ser.serialized_size_matches_model(ct, ctx.params)


class TestBigWordSerialization:
    """Regression: deserialized limbs must keep the per-modulus dtype
    convention (the shared modmath.limb_dtype helper: int64 for every
    native modulus below 2**61, object beyond) and stay computable."""

    @pytest.fixture(scope="class", params=["reference", "stacked"])
    def big_ctx(self, request):
        return CkksContext(PARAMS_54, seed=54, backend=request.param)

    def test_load_restores_native_dtype(self, big_ctx):
        """54-bit limbs are native now: int64 on load, not object."""
        ct = big_ctx.encrypt([1.0, -0.5])
        back = deserialize_ciphertext(serialize_ciphertext(ct),
                                      big_ctx.keygen.context)
        for poly in (back.c0, back.c1):
            for limb, q in zip(poly.limbs, poly.moduli):
                assert q >= (1 << 31)
                assert np.asarray(limb).dtype == np.int64

    def test_load_dtype_matches_compute_helper(self, big_ctx):
        """Save/load and compute share one dtype threshold (limb_dtype)."""
        from repro.fhe.modmath import NATIVE_SAFE_MODULUS, limb_dtype
        for q in PARAMS_54.moduli:
            assert limb_dtype(q) == np.int64
        assert limb_dtype(NATIVE_SAFE_MODULUS - 1) == np.int64
        assert limb_dtype(NATIVE_SAFE_MODULUS) is object
        assert limb_dtype(1 << 62) is object

    def test_roundtrip_then_multiply_and_rescale(self, big_ctx):
        """The first multiply after a 54-bit round-trip must be exact."""
        v = np.array([0.5, -0.75, 1.25])
        ct = big_ctx.encrypt(v)
        back = deserialize_ciphertext(serialize_ciphertext(ct),
                                      big_ctx.keygen.context)
        prod = big_ctx.evaluator.he_mult(back, back)  # includes rescale
        direct = big_ctx.evaluator.he_mult(ct, ct)
        got = big_ctx.decrypt(prod)[:3].real
        assert np.max(np.abs(got - v ** 2)) < 1e-6
        # Bit-identical with the never-serialized path, not merely close.
        for a, b in zip(prod.c0.limbs + prod.c1.limbs,
                        direct.c0.limbs + direct.c1.limbs):
            assert np.array_equal(np.asarray(a, dtype=object),
                                  np.asarray(b, dtype=object))

    def test_roundtrip_then_rotate(self, big_ctx):
        values = np.array([1.0, 2.0, 3.0])
        ct = big_ctx.encrypt(values)
        back = deserialize_ciphertext(serialize_ciphertext(ct),
                                      big_ctx.keygen.context)
        rot = big_ctx.evaluator.he_rotate(back, 1)
        got = big_ctx.decrypt(rot)[:2].real
        assert np.max(np.abs(got - values[1:3])) < 1e-6

    def test_size_model_at_54_bits(self, big_ctx):
        ct = big_ctx.encrypt([0.25] * 4)
        assert serialized_size_matches_model(ct, PARAMS_54)

    def test_save_rejects_residues_beyond_int64(self, big_ctx):
        """Residues >= 2**63 must raise instead of wrapping on the wire."""
        context = big_ctx.keygen.context
        ct = big_ctx.encrypt([1.0])
        huge = (1 << 63) + 12345
        bad_limbs = [np.array([huge] * PARAMS_54.ring_degree, dtype=object)
                     for _ in ct.c0.moduli]
        bad_poly = Polynomial(context, bad_limbs, ct.c0.moduli, ct.c0.rep)
        bad_ct = Ciphertext(c0=bad_poly, c1=ct.c1, level=ct.level,
                            scale=ct.scale)
        with pytest.raises(ValueError, match="2\\*\\*63"):
            serialize_ciphertext(bad_ct)
