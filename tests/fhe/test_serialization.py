"""Tests for ciphertext serialization."""

import numpy as np
import pytest

from repro.fhe import CkksContext
from repro.fhe.serialization import (deserialize_ciphertext,
                                     serialize_ciphertext,
                                     serialized_size_matches_model)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.toy(seed=71)


class TestSerialization:
    def test_roundtrip_preserves_plaintext(self, ctx):
        v = np.array([0.5, -0.75, 1.25])
        ct = ctx.encrypt(v)
        blob = serialize_ciphertext(ct)
        back = deserialize_ciphertext(blob, ctx.keygen.context)
        assert np.max(np.abs(ctx.decrypt(back)[:3].real - v)) < 1e-4

    def test_roundtrip_preserves_metadata(self, ctx):
        ct = ctx.encrypt([1.0], level=2)
        back = deserialize_ciphertext(serialize_ciphertext(ct),
                                      ctx.keygen.context)
        assert back.level == 2
        assert back.scale == ct.scale
        assert back.c0.moduli == ct.c0.moduli

    def test_roundtrip_supports_further_compute(self, ctx):
        v = np.array([0.5, 0.25])
        ct = deserialize_ciphertext(
            serialize_ciphertext(ctx.encrypt(v)), ctx.keygen.context)
        sq = ctx.evaluator.he_square(ct)
        assert np.max(np.abs(ctx.decrypt(sq)[:2].real - v ** 2)) < 1e-3

    def test_wrong_ring_rejected(self, ctx):
        other = CkksContext.test(seed=72)
        blob = serialize_ciphertext(ctx.encrypt([1.0]))
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob, other.keygen.context)

    def test_size_sanity(self, ctx):
        ct = ctx.encrypt([0.1] * 16)
        assert serialized_size_matches_model(ct, ctx.params)

    def test_blob_is_bytes(self, ctx):
        blob = serialize_ciphertext(ctx.encrypt([1.0]))
        assert isinstance(blob, bytes)
        assert len(blob) > 1000
