"""Tests for the cNoC torus, global LDS and barriers."""

import pytest

from repro.gme import (ConcentratedTorus, GlobalLds, TorusDimensions,
                       barrier_cycles)
from repro.gpusim.config import mi100


@pytest.fixture(scope="module")
def torus():
    return ConcentratedTorus()


class TestTopology:
    def test_fifteen_routers_eight_cus_each(self, torus):
        assert torus.num_routers == 15
        assert torus.concentration == 8

    def test_edge_symmetric_degree_four(self, torus):
        """Paper sec 3.1: all routers have the same degree."""
        degrees = {torus.router_degree(r) for r in range(15)}
        assert degrees == {4}

    def test_router_of_cu(self, torus):
        assert torus.router_of_cu(0) == 0
        assert torus.router_of_cu(7) == 0
        assert torus.router_of_cu(8) == 1
        assert torus.router_of_cu(119) == 14

    def test_bad_cu_rejected(self, torus):
        with pytest.raises(ValueError):
            torus.router_of_cu(120)

    def test_hop_distance_symmetric(self, torus):
        for a in range(15):
            for b in range(15):
                assert torus.hop_distance(a, b) == torus.hop_distance(b, a)

    def test_wraparound_shortens_paths(self, torus):
        # Routers 0 (0,0) and 4 (0,4): mesh distance 4, torus distance 1.
        assert torus.hop_distance(0, 4) == 1

    def test_diameter(self, torus):
        # 3x5 torus: floor(3/2) + floor(5/2) = 3.
        assert torus.diameter == 3
        max_hops = max(torus.hop_distance(a, b)
                       for a in range(15) for b in range(15))
        assert max_hops == torus.diameter

    def test_triangle_inequality(self, torus):
        for a in range(15):
            for b in range(15):
                for c in range(0, 15, 3):
                    assert torus.hop_distance(a, b) <= \
                        torus.hop_distance(a, c) + torus.hop_distance(c, b)

    def test_mismatched_geometry_rejected(self):
        with pytest.raises(ValueError):
            ConcentratedTorus(dims=TorusDimensions(rows=4, cols=5))


class TestTiming:
    def test_local_transfer_cheapest(self, torus):
        local = torus.transfer_cycles(0, 1, 1024)     # same router
        remote = torus.transfer_cycles(0, 119, 1024)  # cross machine
        assert local < remote

    def test_serialization_scales_with_bytes(self, torus):
        small = torus.transfer_cycles(0, 16, 64)
        large = torus.transfer_cycles(0, 16, 64 * 1024)
        assert large > small

    def test_cnoc_beats_memory_roundtrip(self, torus):
        """Figure 4: on-chip sharing bypasses the off-chip hierarchy."""
        payload = 64 * 1024
        cnoc_time = torus.transfer_cycles(0, 64, payload)
        cfg = mi100()
        dram_round_trip = 2 * (cfg.dram_latency_cycles
                               + payload / cfg.bytes_per_cycle)
        assert cnoc_time < dram_round_trip

    def test_broadcast_bounded_by_diameter(self, torus):
        t = torus.broadcast_cycles(0, 64)
        assert t >= (torus.diameter + 1) * torus.hop_latency


class TestGlobalLds:
    def test_capacity_is_7_5_mb(self, torus):
        gas = GlobalLds(torus)
        assert gas.capacity_bytes == 7.5 * 1024 * 1024

    def test_lds_scale(self, torus):
        gas = GlobalLds(torus, lds_scale=2.0)
        assert gas.capacity_bytes == 15 * 1024 * 1024

    def test_put_and_residency(self, torus):
        gas = GlobalLds(torus)
        assert gas.put("ct0", 1 << 20)
        assert gas.is_resident("ct0")
        assert gas.used_bytes == 1 << 20
        gas.drop("ct0")
        assert not gas.is_resident("ct0")

    def test_eviction_under_pressure(self, torus):
        gas = GlobalLds(torus)
        mb = 1024 * 1024
        for i in range(7):
            assert gas.put(f"buf{i}", mb)
        assert gas.put("big", 2 * mb)      # forces eviction of oldest
        assert gas.evictions >= 1
        assert not gas.is_resident("buf0")
        assert gas.used_bytes <= gas.capacity_bytes

    def test_oversized_buffer_rejected(self, torus):
        gas = GlobalLds(torus)
        assert not gas.put("huge", 8 * 1024 * 1024)

    def test_address_hashing_spreads_lines(self, torus):
        gas = GlobalLds(torus)
        homes = {gas.address_home(line * 64)[1] for line in range(240)}
        assert len(homes) == 120           # every CU is hit


class TestBarriers:
    def test_barrier_hierarchy(self, torus):
        wg = barrier_cycles(torus, "workgroup")
        se = barrier_cycles(torus, "shader_engine")
        glob = barrier_cycles(torus, "global")
        assert wg < se < glob

    def test_unknown_scope_rejected(self, torus):
        with pytest.raises(ValueError):
            barrier_cycles(torus, "galaxy")
