"""Tests for LABS: multilevel partitioning and SA mapping."""

import networkx as nx
import numpy as np
import pytest

from repro.gme import (ConcentratedTorus, LabsScheduler,
                       MultilevelPartitioner, SimulatedAnnealingMapper,
                       cut_cost, mapping_cost)


def _clustered_graph(num_clusters=6, cluster_size=8, seed=0):
    """Graph with dense heavy clusters and light cross-cluster edges."""
    rng = np.random.default_rng(seed)
    g = nx.Graph()
    for c in range(num_clusters):
        nodes = [f"c{c}n{i}" for i in range(cluster_size)]
        for n in nodes:
            g.add_node(n, weight=1.0)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                g.add_edge(u, v, weight=10.0 + rng.random())
    for c in range(num_clusters - 1):
        g.add_edge(f"c{c}n0", f"c{c + 1}n0", weight=0.5)
    return g


def _block_dag(depth=20, width=3, seed=1):
    rng = np.random.default_rng(seed)
    g = nx.DiGraph()
    prev = []
    for d in range(depth):
        layer = [f"b{d}_{w}" for w in range(width)]
        for n in layer:
            g.add_node(n, weight=1.0 + rng.random())
        for n in layer:
            for p in prev:
                if rng.random() < 0.5:
                    g.add_edge(p, n, weight=float(rng.integers(1, 30)))
        prev = layer
    return g


class TestPartitioner:
    def test_all_nodes_assigned(self):
        g = _clustered_graph()
        result = MultilevelPartitioner(6).partition(g)
        assert set(result.parts) == set(g.nodes)
        assert all(0 <= p < 6 for p in result.parts.values())

    def test_finds_natural_clusters(self):
        """Heavy intra-cluster edges must not be cut."""
        g = _clustered_graph()
        result = MultilevelPartitioner(6).partition(g)
        total = sum(d["weight"] for _, _, d in g.edges(data=True))
        assert result.phi < 0.05 * total

    def test_balance_respected(self):
        g = _clustered_graph(num_clusters=8, cluster_size=6)
        result = MultilevelPartitioner(4, balance_tolerance=0.25)\
            .partition(g)
        assert result.imbalance < 0.6

    def test_beats_random_partition(self):
        g = _clustered_graph(seed=3)
        result = MultilevelPartitioner(6).partition(g)
        rng = np.random.default_rng(0)
        random_parts = {n: int(rng.integers(0, 6)) for n in g.nodes}
        assert result.phi < cut_cost(g, random_parts)

    def test_single_part_zero_cut(self):
        g = _clustered_graph(num_clusters=2, cluster_size=4)
        result = MultilevelPartitioner(1).partition(g)
        assert result.phi == 0.0

    def test_empty_graph(self):
        result = MultilevelPartitioner(4).partition(nx.Graph())
        assert result.parts == {}
        assert result.phi == 0.0

    def test_deterministic(self):
        g = _clustered_graph(seed=5)
        r1 = MultilevelPartitioner(6, seed=11).partition(g)
        r2 = MultilevelPartitioner(6, seed=11).partition(g)
        assert r1.parts == r2.parts

    def test_directed_graph_accepted(self):
        dag = _block_dag()
        result = MultilevelPartitioner(5).partition(dag)
        assert set(result.parts) == set(dag.nodes)

    def test_invalid_part_count(self):
        with pytest.raises(ValueError):
            MultilevelPartitioner(0)


class TestMapper:
    def test_mapping_is_injective(self):
        g = _clustered_graph()
        parts = MultilevelPartitioner(6).partition(g).parts
        torus = ConcentratedTorus()
        assignment = SimulatedAnnealingMapper(torus).map_parts(g, parts)
        routers = list(assignment.values())
        assert len(set(routers)) == len(routers)
        assert all(0 <= r < torus.num_routers for r in routers)

    def test_annealing_reduces_gamma(self):
        """SA must beat the identity mapping on a traffic-skewed graph."""
        g = nx.Graph()
        # Parts 0 and 5 exchange heavy traffic; identity puts them 2+ hops
        # apart on the 3x5 torus.
        for i in range(12):
            g.add_node(i, weight=1.0)
        g.add_edge(0, 5, weight=1000.0)
        g.add_edge(1, 10, weight=1000.0)
        g.add_edge(2, 7, weight=1000.0)
        parts = {i: i for i in range(12)}
        torus = ConcentratedTorus()
        identity = {i: i for i in range(12)}
        mapper = SimulatedAnnealingMapper(torus, iterations=3000)
        assignment = mapper.map_parts(g, parts)
        assert mapping_cost(g, parts, assignment, torus) <= \
            mapping_cost(g, parts, identity, torus)

    def test_too_many_parts_rejected(self):
        g = nx.Graph()
        parts = {i: i for i in range(16)}
        for i in range(16):
            g.add_node(i)
        with pytest.raises(ValueError):
            SimulatedAnnealingMapper(ConcentratedTorus()).map_parts(g,
                                                                    parts)


class TestScheduler:
    def test_schedule_is_topological(self):
        dag = _block_dag()
        schedule = LabsScheduler().schedule(dag)
        position = {b: i for i, b in enumerate(schedule.block_order)}
        for u, v in dag.edges:
            assert position[u] < position[v]

    def test_schedule_covers_all_blocks(self):
        dag = _block_dag(depth=10)
        schedule = LabsScheduler().schedule(dag)
        assert set(schedule.block_order) == set(dag.nodes)
        assert set(schedule.block_router) == set(dag.nodes)

    def test_phi_below_total_traffic(self):
        dag = _block_dag()
        schedule = LabsScheduler().schedule(dag)
        assert schedule.phi < schedule.phi_unpartitioned

    def test_cycle_rejected(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", weight=1.0)
        g.add_edge("b", "a", weight=1.0)
        with pytest.raises(ValueError):
            LabsScheduler().schedule(g)

    def test_affinity_grouping(self):
        """Blocks of the same partition should cluster in the order."""
        dag = _block_dag(depth=30, width=2, seed=9)
        schedule = LabsScheduler().schedule(dag)
        parts_seq = [schedule.parts[b] for b in schedule.block_order]
        switches = sum(1 for a, b in zip(parts_seq, parts_seq[1:])
                       if a != b)
        # Far fewer part switches than blocks (random order ~ n * (k-1)/k).
        assert switches < len(parts_seq) * 0.8
