"""Tests for the MOD unit, WMAC unit and feature sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gme import BASELINE, FeatureSet, GME_FULL, ModUnit, WmacUnit
from repro.gme.features import cumulative_configs, figure7_configs
from repro.gme.wmac import WideRegisterFile
from repro.gpusim.isa import PipelineProfile

PRIMES = [1032193, (1 << 30) - 35, 2**54 - 33]


class TestModUnit:
    @pytest.mark.parametrize("q", PRIMES)
    def test_mod_red_functional(self, q):
        unit = ModUnit()
        for x in [0, 1, q - 1, q, q + 1, (q - 1) ** 2, 123456789]:
            assert unit.mod_red(x, q) == x % q

    @pytest.mark.parametrize("q", PRIMES)
    def test_mod_add_mul_functional(self, q):
        unit = ModUnit()
        a, b = (q - 3) % q, (q // 2 + 7) % q
        assert unit.mod_add(a, b, q) == (a + b) % q
        assert unit.mod_mul(a, b, q) == (a * b) % q

    @settings(deadline=None, max_examples=50)
    @given(st.integers(min_value=0, max_value=(2**30 - 36) ** 2))
    def test_mod_red_property(self, x):
        q = (1 << 30) - 35
        unit = ModUnit()
        assert unit.mod_red(x, q) == x % q

    def test_compile_time_constants_cached(self):
        unit = ModUnit()
        q = PRIMES[0]
        unit.mod_red(100, q)
        assert q in unit._constants
        assert unit.executed == 1

    def test_timing_matches_table4(self):
        unit = ModUnit(wmac_backed=False)
        assert unit.instruction_cycles("mod_red", 1000) == pytest.approx(
            unit.paper_reference("mod_red"), rel=0.12)
        wmac = ModUnit(wmac_backed=True)
        assert wmac.instruction_cycles("mod_add", 1000) == pytest.approx(
            wmac.paper_reference("mod_add"), rel=0.12)

    def test_unknown_instruction_rejected(self):
        with pytest.raises(KeyError):
            ModUnit().instruction_cycles("mod_div")


class TestWmac:
    def test_mul64_words(self):
        unit = WmacUnit()
        lo, hi = unit.mul64(2**40, 2**40)
        assert lo == 0 and hi == 1 << 16

    def test_mac64_wraps(self):
        unit = WmacUnit()
        assert unit.mac64(2**63, 2, 5) == 5     # 2^64 wraps to 0

    @settings(deadline=None, max_examples=50)
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_mul64_property(self, a, b):
        lo, hi = WmacUnit().mul64(a, b)
        assert (hi << 64) | lo == a * b

    def test_register_file_accounting(self):
        regs = WideRegisterFile(capacity_bytes=1024)
        assert regs.try_allocate(512)
        assert regs.try_allocate(512)
        assert not regs.try_allocate(1)
        regs.free(512)
        assert regs.occupancy == 0.5

    def test_speedup_vs_emulation(self):
        assert WmacUnit.speedup_vs_emulation("mod_mul") > 3.0
        assert WmacUnit.speedup_vs_emulation("mod_add") > 3.0


class TestFeatureSet:
    def test_baseline_profile(self):
        assert BASELINE.pipeline_profile() is PipelineProfile.VANILLA
        assert BASELINE.name == "Baseline"

    def test_full_gme_profile(self):
        assert GME_FULL.pipeline_profile() is PipelineProfile.MOD_WMAC
        assert "cNoC" in GME_FULL.name and "LABS" in GME_FULL.name

    def test_mod_only_profile(self):
        fs = FeatureSet(mod=True)
        assert fs.pipeline_profile() is PipelineProfile.MOD

    def test_cumulative_ladder_monotone(self):
        ladder = cumulative_configs()
        assert len(ladder) == 5
        assert ladder[0] == BASELINE
        enabled = [sum((f.cnoc, f.mod, f.wmac, f.labs)) for f in ladder]
        assert enabled == sorted(enabled)
        assert ladder[-1] == GME_FULL

    def test_figure7_ladder_ends_with_2xlds(self):
        ladder = figure7_configs()
        assert ladder[-1].lds_scale == 2.0
        assert ladder[-1].labs

    def test_lds_scale_naming(self):
        fs = GME_FULL.with_lds_scale(2.0)
        assert "2xLDS" in fs.name
