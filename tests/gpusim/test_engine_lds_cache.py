"""Tests for the DES engine, LDS conflict model, caches and DRAM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import BankedCache, Cache, EventEngine, HbmModel, LdsModel
from repro.gpusim.config import mi100


class TestEventEngine:
    def test_events_run_in_time_order(self):
        engine = EventEngine()
        log = []
        engine.schedule(30, lambda: log.append("c"))
        engine.schedule(10, lambda: log.append("a"))
        engine.schedule(20, lambda: log.append("b"))
        engine.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_fifo(self):
        engine = EventEngine()
        log = []
        for i in range(5):
            engine.schedule(7, lambda i=i: log.append(i))
        engine.run()
        assert log == [0, 1, 2, 3, 4]

    def test_nested_scheduling(self):
        engine = EventEngine()
        log = []

        def first():
            log.append(("first", engine.now))
            engine.schedule(5, lambda: log.append(("second", engine.now)))

        engine.schedule(10, first)
        engine.run()
        assert log == [("first", 10.0), ("second", 15.0)]

    def test_run_until(self):
        engine = EventEngine()
        log = []
        engine.schedule(10, lambda: log.append(1))
        engine.schedule(50, lambda: log.append(2))
        engine.run(until=20)
        assert log == [1]
        assert engine.now == 20
        engine.run()
        assert log == [1, 2]

    def test_cancel(self):
        engine = EventEngine()
        log = []
        ev = engine.schedule(10, lambda: log.append(1))
        engine.cancel(ev)
        engine.run()
        assert log == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventEngine().schedule(-1, lambda: None)

    @settings(deadline=None, max_examples=30)
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_monotonic_time_property(self, delays):
        engine = EventEngine()
        seen = []
        for d in delays:
            engine.schedule(d, lambda: seen.append(engine.now))
        engine.run()
        assert seen == sorted(seen)
        assert engine.events_processed == len(delays)


class TestLds:
    def test_conflict_free_unit_stride(self):
        lds = LdsModel()
        cycles = lds.access_strided(1)
        assert cycles == lds.base_latency

    def test_power_of_two_stride_conflicts(self):
        lds = LdsModel()
        # Stride 32 words: every lane hits the same bank -> 16-way serial.
        cycles = lds.access_strided(32)
        assert cycles == lds.base_latency + 15

    def test_same_bank_addresses_serialize(self):
        lds = LdsModel()
        addrs = np.zeros(16, dtype=int)           # all lanes, one address
        assert lds.access_addresses(addrs) == lds.base_latency + 15

    def test_distinct_banks_no_conflict(self):
        lds = LdsModel()
        addrs = np.arange(16) * 4
        assert lds.access_addresses(addrs) == lds.base_latency

    def test_random_access_overhead_is_small(self):
        lds = LdsModel()
        rng = np.random.default_rng(3)
        total = sum(lds.access_random(rng) for _ in range(500))
        avg = total / 500
        assert lds.base_latency < avg < lds.base_latency + 4


class TestCache:
    def test_miss_then_hit(self):
        c = Cache(1024, line_bytes=64, ways=2)
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(32) is True       # same line

    def test_capacity_eviction_lru(self):
        c = Cache(256, line_bytes=64, ways=2)   # 2 sets x 2 ways
        # Fill set 0 (lines 0, 2 map to set 0 with 2 sets).
        c.access(0)          # line 0 -> set 0
        c.access(128)        # line 2 -> set 0
        c.access(256)        # line 4 -> set 0, evicts line 0
        assert c.evictions == 1
        assert c.access(0) is False       # was evicted

    def test_dirty_writeback(self):
        c = Cache(256, line_bytes=64, ways=2)
        c.access(0, write=True)
        c.access(128)
        c.access(256)        # evicts dirty line 0
        assert c.writebacks == 1

    def test_flush_counts_dirty_lines(self):
        c = Cache(1024, line_bytes=64, ways=4)
        c.access(0, write=True)
        c.access(64, write=True)
        c.access(128)
        assert c.flush() == 2
        assert c.lines_resident == 0

    def test_access_range(self):
        c = Cache(4096, line_bytes=64, ways=4)
        hits, misses = c.access_range(0, 256)
        assert (hits, misses) == (0, 4)
        hits, misses = c.access_range(0, 256)
        assert (hits, misses) == (4, 0)

    def test_hit_rate(self):
        c = Cache(1024)
        c.access(0)
        c.access(0)
        assert c.hit_rate == 0.5

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(100, line_bytes=64, ways=4)

    @settings(deadline=None, max_examples=25)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20),
                    min_size=1, max_size=200))
    def test_resident_lines_bounded_property(self, addresses):
        c = Cache(2048, line_bytes=64, ways=2)
        for a in addresses:
            c.access(a)
        assert c.lines_resident <= c.num_sets * c.ways
        assert c.hits + c.misses == len(addresses)

    def test_banked_cache_routes_addresses(self):
        b = BankedCache(8192, banks=4, line_bytes=64, ways=2)
        for addr in range(0, 4 * 64, 64):
            b.access(addr)
        touched = [bank for bank in b.banks if bank.misses]
        assert len(touched) == 4          # round-robin across banks


class TestHbm:
    def test_bandwidth_time(self):
        hbm = HbmModel(mi100())
        bpc = mi100().bytes_per_cycle
        cycles = hbm.transfer_cycles(bpc * 1000)
        assert cycles == pytest.approx(mi100().dram_latency_cycles + 1000)

    def test_efficiency_scales_time(self):
        hbm = HbmModel(mi100())
        t_full = hbm.transfer_cycles(1 << 20, efficiency=1.0)
        t_half = hbm.transfer_cycles(1 << 20, efficiency=0.5)
        stream_full = t_full - mi100().dram_latency_cycles
        stream_half = t_half - mi100().dram_latency_cycles
        assert stream_half == pytest.approx(2 * stream_full)

    def test_traffic_accounting(self):
        hbm = HbmModel(mi100())
        hbm.transfer_cycles(1000)
        hbm.transfer_cycles(500, write=True)
        assert hbm.bytes_read == 1000
        assert hbm.bytes_written == 500
        assert hbm.total_bytes == 1500

    def test_bad_efficiency_rejected(self):
        hbm = HbmModel(mi100())
        with pytest.raises(ValueError):
            hbm.transfer_cycles(100, efficiency=0.0)

    def test_utilization_capped(self):
        hbm = HbmModel(mi100())
        hbm.transfer_cycles(1 << 30)
        assert hbm.bandwidth_utilization(1.0) == 1.0
        assert hbm.bandwidth_utilization(0.0) == 0.0
