"""Tests for the pipeline (Table 4), CU model, dispatcher and GPU."""

import math

import pytest

from repro.gpusim import (Gpu, GreedyDispatcher, ComputeUnit,
                          KernelDescriptor, LAUNCH_OVERHEAD_CYCLES,
                          PAPER_TABLE4, PipelineProfile, ScoreboardPipeline,
                          WorkGroup, automorphism_kernel,
                          base_conversion_kernel, elementwise_kernel,
                          measure_table4, mi100, ntt_kernel)


class TestConfig:
    def test_mi100_table5_values(self):
        cfg = mi100()
        assert cfg.num_cus == 120
        assert cfg.num_shader_engines == 15
        assert cfg.lds_total_mb == 7.5
        assert cfg.l2_mb == 8.0
        assert cfg.lanes_total == 7680
        assert cfg.mem_bandwidth_gbps == 1229.0

    def test_lds_scaling(self):
        cfg = mi100().with_lds_mb(15.5)
        assert abs(cfg.lds_total_mb - 15.5) < 0.2

    def test_bytes_per_cycle(self):
        cfg = mi100()
        assert cfg.bytes_per_cycle == pytest.approx(1229.0 / 1.502)


class TestTable4Pipeline:
    """The headline microbenchmark: Table 4 cycle counts."""

    @pytest.mark.parametrize("profile", list(PipelineProfile))
    def test_cycle_counts_match_paper(self, profile):
        pipe = ScoreboardPipeline(profile, seed=7)
        paper = PAPER_TABLE4[profile]
        for op, expected in paper.items():
            measured = pipe.measure_instruction(op, count=2000)
            assert measured == pytest.approx(expected, rel=0.10), \
                f"{profile.value}/{op}: {measured:.1f} vs paper {expected}"

    def test_mod_red_latency_reduced_43_percent(self):
        """Paper section 7: MOD reduces mod-red latency by ~43%."""
        vanilla = ScoreboardPipeline(PipelineProfile.VANILLA, seed=7)
        mod = ScoreboardPipeline(PipelineProfile.MOD, seed=7)
        v = vanilla.measure_instruction("mod_red", 2000)
        m = mod.measure_instruction("mod_red", 2000)
        reduction = 1 - m / v
        assert 0.35 < reduction < 0.50

    def test_wmac_strictly_fastest(self):
        results = measure_table4(count=500)
        for op in ("mod_red", "mod_add", "mod_mul"):
            assert results[PipelineProfile.MOD_WMAC][op] < \
                results[PipelineProfile.MOD][op] < \
                results[PipelineProfile.VANILLA][op]

    def test_unknown_instruction_rejected(self):
        pipe = ScoreboardPipeline(PipelineProfile.VANILLA)
        with pytest.raises(KeyError):
            pipe.instruction_latency("fancy_op")

    def test_deterministic_given_seed(self):
        a = ScoreboardPipeline(PipelineProfile.VANILLA, seed=3)
        b = ScoreboardPipeline(PipelineProfile.VANILLA, seed=3)
        assert a.measure_instruction("mod_mul", 100) == \
            b.measure_instruction("mod_mul", 100)


class TestComputeUnit:
    def test_issue_cycles_scale_with_count(self):
        cu = ComputeUnit(0, mi100(), PipelineProfile.VANILLA)
        one = cu.issue_cycles({"mod_mul": 1})
        many = cu.issue_cycles({"mod_mul": 10})
        assert many == 10 * one

    def test_wmac_higher_throughput(self):
        mix = {"mod_mul": 100, "mod_add": 100}
        vanilla = ComputeUnit(0, mi100(), PipelineProfile.VANILLA)
        wmac = ComputeUnit(0, mi100(), PipelineProfile.MOD_WMAC)
        assert wmac.issue_cycles(mix) < vanilla.issue_cycles(mix) / 3

    def test_workgroup_cycles_use_all_simds(self):
        cu = ComputeUnit(0, mi100(), PipelineProfile.VANILLA)
        wg = WorkGroup(0, 4, {"mod_add": 64})
        expected = cu.issue_cycles(wg.inst_mix) / mi100().simd_per_cu
        assert cu.workgroup_cycles(wg) == pytest.approx(expected)

    def test_lds_fit_check(self):
        cu = ComputeUnit(0, mi100())
        assert cu.lds_fits(WorkGroup(0, 4, {}, lds_bytes=64 * 1024))
        assert not cu.lds_fits(WorkGroup(0, 4, {}, lds_bytes=65 * 1024))


class TestDispatcher:
    def _cus(self, n):
        return [ComputeUnit(i, mi100()) for i in range(n)]

    def test_single_wg(self):
        disp = GreedyDispatcher(self._cus(4))
        res = disp.dispatch([WorkGroup(0, 4, {"mod_add": 10})])
        assert res.makespan > 0
        assert res.wg_cu_assignment[0] == 0

    def test_load_balanced_across_cus(self):
        disp = GreedyDispatcher(self._cus(4), max_concurrent_wgs=1)
        wgs = [WorkGroup(i, 4, {"mod_add": 10}) for i in range(8)]
        res = disp.dispatch(wgs)
        assigned = set(res.wg_cu_assignment.values())
        assert assigned == {0, 1, 2, 3}
        # Perfect balance: 2 wgs per CU -> makespan = 2 * wg duration.
        one = self._cus(1)[0].workgroup_cycles(wgs[0])
        assert res.makespan == pytest.approx(2 * one)

    def test_oversubscription_hides_stall_time(self):
        """Extra wg slots overlap durations that include stall time."""
        def stall_heavy(cu, wg):
            return cu.workgroup_cycles(wg) + 1000.0   # memory stalls
        serial = GreedyDispatcher(self._cus(1), max_concurrent_wgs=1)
        overlapped = GreedyDispatcher(self._cus(1), max_concurrent_wgs=4)
        wgs_a = [WorkGroup(i, 4, {"mod_add": 10}) for i in range(4)]
        wgs_b = [WorkGroup(i, 4, {"mod_add": 10}) for i in range(4)]
        t_serial = serial.dispatch(wgs_a, duration_fn=stall_heavy).makespan
        t_overlap = overlapped.dispatch(wgs_b,
                                        duration_fn=stall_heavy).makespan
        assert t_overlap < t_serial

    def test_utilization_bounds(self):
        disp = GreedyDispatcher(self._cus(2))
        wgs = [WorkGroup(i, 4, {"mod_add": 5}) for i in range(16)]
        res = disp.dispatch(wgs)
        assert 0.0 < res.cu_utilization <= 1.0


class TestKernels:
    def test_ntt_kernel_counts(self):
        k = ntt_kernel(ring_degree=1 << 16, num_limbs=32, word_bytes=6.75)
        stages = 16
        assert sum(wg.inst_mix["ntt_butterfly"]
                   for wg in k.workgroups()) == pytest.approx(
            32 * (1 << 15) * stages, rel=0.01)
        assert k.dram_read_bytes > k.dram_write_bytes  # twiddles included

    def test_elementwise_kernel(self):
        k = elementwise_kernel("limb_mult", "mod_mul", 1 << 16, 32, 6.75)
        assert k.total_instructions == pytest.approx(32 * (1 << 16),
                                                     rel=0.01)
        limb = (1 << 16) * 6.75
        assert k.dram_read_bytes == pytest.approx(2 * 32 * limb)
        assert k.dram_write_bytes == pytest.approx(32 * limb)

    def test_automorphism_is_data_movement(self):
        k = automorphism_kernel(1 << 12, 8, 8)
        assert set(k.inst_mix_per_wg) == {"mov"}
        assert k.dram_read_bytes == k.dram_write_bytes

    def test_base_conversion_quadratic_in_limbs(self):
        small = base_conversion_kernel(1 << 12, 4, 8, 8)
        big = base_conversion_kernel(1 << 12, 8, 8, 8)
        assert big.total_instructions > 1.5 * small.total_instructions

    def test_workgroup_shares_sum_to_totals(self):
        k = elementwise_kernel("x", "mod_add", 1 << 12, 4, 8)
        wgs = k.workgroups()
        assert sum(w.dram_read_bytes for w in wgs) == pytest.approx(
            k.dram_read_bytes)


class TestGpu:
    def test_memory_bound_kernel(self):
        gpu = Gpu(mi100(), PipelineProfile.VANILLA, bw_efficiency=0.5)
        k = KernelDescriptor(name="copy", num_workgroups=100,
                             inst_mix_per_wg={"mov": 10},
                             dram_read_bytes=1 << 30,
                             dram_write_bytes=1 << 30)
        res = gpu.run_kernel(k)
        assert not res.compute_bound
        assert res.cycles > res.compute_cycles

    def test_compute_bound_kernel(self):
        gpu = Gpu(mi100(), PipelineProfile.VANILLA)
        k = KernelDescriptor(name="math", num_workgroups=2000,
                             inst_mix_per_wg={"mod_mul": 5000},
                             dram_read_bytes=1 << 10,
                             dram_write_bytes=1 << 10)
        res = gpu.run_kernel(k)
        assert res.compute_bound

    def test_wmac_speeds_up_compute_bound(self):
        k = KernelDescriptor(name="math", num_workgroups=2000,
                             inst_mix_per_wg={"mod_mul": 5000},
                             dram_read_bytes=1 << 10)
        t_vanilla = Gpu(mi100(), PipelineProfile.VANILLA).run_kernel(k)
        t_wmac = Gpu(mi100(), PipelineProfile.MOD_WMAC).run_kernel(k)
        speedup = t_vanilla.cycles / t_wmac.cycles
        assert speedup > 3.0

    def test_launch_overhead_floor(self):
        gpu = Gpu(mi100())
        k = KernelDescriptor(name="tiny", num_workgroups=1,
                             inst_mix_per_wg={"mov": 1})
        res = gpu.run_kernel(k)
        assert res.cycles >= LAUNCH_OVERHEAD_CYCLES

    def test_to_us(self):
        gpu = Gpu(mi100())
        assert gpu.to_us(1502) == pytest.approx(1.0)
