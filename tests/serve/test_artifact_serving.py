"""Deploy-from-artifact: PlanServer fed by a saved ``.rpa`` plan.

The serving layer's shared-plan cache can load a previously saved
real-mode plan instead of compiling one.  The contract: a loaded plan
serves the same results as a compiled one, refuses to deploy under the
wrong workload or parameters, passes the same strict lint, and its
header fingerprint is stamped into every metrics snapshot.
"""

import numpy as np
import pytest

from repro.fhe.params import CkksParameters
from repro.serve import (PlanServer, scoring_workload, serve,
                         shared_plan)
from repro.serve.cache import clear_serve_caches

TOY = CkksParameters.toy()


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_serve_caches()
    yield
    clear_serve_caches()


@pytest.fixture()
def workload():
    return scoring_workload(8)


@pytest.fixture()
def artifact(tmp_path, workload):
    path = str(tmp_path / "score.rpa")
    workload.compile(TOY).save(path)
    return path


class TestSharedPlanFromArtifact:
    def test_loaded_plan_is_cached(self, workload, artifact):
        a = shared_plan(workload, TOY, artifact=artifact)
        b = shared_plan(workload, TOY, artifact=artifact)
        assert a is b

    def test_artifact_and_compiled_plans_cache_separately(
            self, workload, artifact):
        loaded = shared_plan(workload, TOY, artifact=artifact)
        compiled = shared_plan(workload, TOY)
        assert loaded is not compiled
        assert loaded.trace == compiled.trace

    def test_wrong_workload_refused(self, artifact):
        other = scoring_workload(16, name="other")
        with pytest.raises(ValueError, match="does not serve"):
            shared_plan(other, TOY, artifact=artifact)

    def test_wrong_params_refused(self, workload, artifact):
        with pytest.raises(ValueError, match="parameters"):
            shared_plan(workload, CkksParameters.test(),
                        artifact=artifact)

    def test_loaded_plan_lints_strict(self, workload, artifact):
        plan = shared_plan(workload, TOY, artifact=artifact)
        assert plan.lint_report is not None


class TestServeFromArtifact:
    def test_results_match_compiled_path(self, workload, artifact):
        queries = [np.arange(8, dtype=float) / 8,
                   np.ones(8) * 0.25,
                   np.linspace(0.0, 0.5, 8)]
        server = PlanServer.real(workload, TOY, artifact=artifact)
        from_artifact, snap = serve(workload, queries, TOY,
                                    server=server)
        clear_serve_caches()
        from_compile, _ = serve(workload, queries, TOY)
        for a, b in zip(from_artifact, from_compile):
            assert np.allclose(a, b)
        assert snap["served"] == len(queries)

    def test_fingerprint_in_metrics_snapshot(self, workload, artifact):
        from repro.artifact import read_artifact
        expected = read_artifact(artifact).fingerprint
        server = PlanServer.real(workload, TOY, artifact=artifact)
        results, snap = serve(workload,
                              [np.ones(8) * 0.1], TOY, server=server)
        assert snap["plan_fingerprint"] == expected
        # start() resets metrics; the fingerprint must survive the reset
        # (serve() above went through start/stop).
        assert server.metrics.plan_fingerprint == expected

    def test_compiled_path_also_fingerprints(self, workload):
        server = PlanServer.real(workload, TOY)
        assert server.plan_fingerprint is not None
        assert (server.metrics.snapshot()["plan_fingerprint"]
                == server.plan_fingerprint)


class TestSimulatedFromArtifact:
    def test_rpa_path_accepted(self, tmp_path):
        from repro import engine
        plan = engine.compile("boot", TOY)
        path = str(tmp_path / "boot.rpa")
        plan.save(path)
        server = PlanServer.simulated(path, width=8)
        assert server.plan_fingerprint == plan.fingerprint
        assert (server.executor.seconds_per_execution
                == PlanServer.simulated(plan, width=8)
                .executor.seconds_per_execution)

    def test_param_mismatch_refused(self, tmp_path):
        from repro import engine
        plan = engine.compile("boot", TOY)
        path = str(tmp_path / "boot.rpa")
        plan.save(path)
        with pytest.raises(ValueError, match="parameters"):
            PlanServer.simulated(path, width=8,
                                 params=CkksParameters.paper())
