"""Slot-level batcher: packing, admission policy, and batch state."""

import numpy as np
import pytest

from repro.fhe.packing import SlotLayout
from repro.serve import Batch, Query, SlotBatcher

LAYOUT = SlotLayout(num_slots=512, width=16)


class TestQueryAndBatch:
    def test_query_coerces_values(self):
        q = Query(tenant="a", values=[1.0, 2.0])
        assert isinstance(q.values, np.ndarray)
        assert q.submitted_at > 0

    def test_batch_occupancy_and_len(self):
        queries = [Query("a", np.ones(16)) for _ in range(8)]
        batch = Batch(tenant="a", layout=LAYOUT, queries=queries)
        assert len(batch) == 8
        assert batch.occupancy == pytest.approx(8 * 16 / 512)

    def test_packed_values_window_per_query(self):
        queries = [Query("a", np.full(16, float(i + 1)))
                   for i in range(3)]
        batch = Batch(tenant="a", layout=LAYOUT, queries=queries)
        packed = batch.packed_values()
        assert packed.shape == (512,)
        for i in range(3):
            assert np.array_equal(packed[LAYOUT.window(i)],
                                  np.full(16, float(i + 1)))
        assert not packed[3 * 16:].any()


class TestAdmission:
    def test_batch_closes_at_max_batch_queries(self):
        batcher = SlotBatcher(LAYOUT, max_batch_queries=4)
        for i in range(3):
            assert batcher.add(Query("a", np.ones(4))) is None
        batch = batcher.add(Query("a", np.ones(4)))
        assert batch is not None and len(batch) == 4
        assert batcher.pending_count() == 0

    def test_default_max_is_layout_capacity(self):
        batcher = SlotBatcher(LAYOUT)
        assert batcher.max_batch_queries == LAYOUT.capacity

    def test_max_beyond_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            SlotBatcher(LAYOUT, max_batch_queries=LAYOUT.capacity + 1)
        with pytest.raises(ValueError, match="capacity"):
            SlotBatcher(LAYOUT, max_batch_queries=0)

    def test_oversized_payload_rejected(self):
        batcher = SlotBatcher(LAYOUT)
        with pytest.raises(ValueError, match="window"):
            batcher.add(Query("a", np.ones(17)))
        assert batcher.pending_count() == 0

    def test_tenants_batch_separately(self):
        """Tenant = key domain: queries never share a ciphertext
        across tenants."""
        batcher = SlotBatcher(LAYOUT, max_batch_queries=2)
        assert batcher.add(Query("a", np.ones(4))) is None
        assert batcher.add(Query("b", np.ones(4))) is None
        batch = batcher.add(Query("a", np.ones(4)))
        assert batch.tenant == "a" and len(batch) == 2
        assert batcher.pending_tenants() == ["b"]

    def test_flush_closes_partial_batch(self):
        batcher = SlotBatcher(LAYOUT, max_batch_queries=8)
        batcher.add(Query("a", np.ones(4)))
        batch = batcher.flush("a")
        assert len(batch) == 1
        assert batcher.flush("a") is None       # nothing left

    def test_flush_all_drains_every_tenant(self):
        batcher = SlotBatcher(LAYOUT, max_batch_queries=8)
        for tenant in ("a", "b", "c"):
            batcher.add(Query(tenant, np.ones(4)))
        batches = batcher.flush_all()
        assert sorted(b.tenant for b in batches) == ["a", "b", "c"]
        assert batcher.pending_count() == 0
