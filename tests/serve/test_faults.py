"""Deterministic fault injection: wrapper semantics and chaos runs.

Three tiers: :func:`window_checksum` / :class:`FaultPlan` properties,
wrapper-level injection against a stub executor, and full-server chaos
— ending in the acceptance scenario from ISSUE.md: a seeded 32-query
multi-tenant run over the *real* executor with 10% transient faults and
one poisoned tenant, where only the poisoned query fails (typed), every
co-rider is bit-identical to a fault-free run at ``round_decimals``,
and the poisoned tenant's breaker ends open.
"""

import numpy as np
import pytest

from repro.fhe.packing import SlotLayout
from repro.fhe.params import CkksParameters
from repro.serve import (BreakerState, CorruptedResult,
                         FaultInjectingExecutor, FaultPlan, PlanServer,
                         PoisonedQueryError, Query, RealExecutor,
                         ResilienceConfig, RetryPolicy, ServeConfig,
                         TenantKeyCache, TransientFault,
                         scoring_workload, serve, window_checksum)
from repro.serve.batcher import Batch
from repro.serve.faults import InjectedFault

LAYOUT = SlotLayout(num_slots=512, width=16)


class EchoStub:
    """Crypto-free executor: result = first value of each query."""

    def __init__(self):
        self.layout = LAYOUT
        self.calls = 0

    def run(self, batch):
        self.calls += 1
        return ([np.asarray(q.values[:1], dtype=float).copy()
                 for q in batch.queries], 1e-4)


def make_batch(values, tenant="t0"):
    return Batch(tenant=tenant, layout=LAYOUT,
                 queries=[Query(tenant, np.full(16, v))
                          for v in values])


class TestWindowChecksum:
    def test_stable_across_dtype_and_negative_zero(self):
        a = np.array([1.25, -0.0, 3.5])
        b = np.array([1.25, 0.0, 3.5], dtype=np.float32)
        assert window_checksum(a) == window_checksum(b)

    def test_sub_precision_noise_is_tolerated_flips_are_not(self):
        base = np.array([1.234567, 8.9])
        noisy = base + 1e-9
        flipped = base.copy()
        flipped[1] = -flipped[1] - 1.0
        assert window_checksum(base, 6) == window_checksum(noisy, 6)
        assert window_checksum(base, 6) != window_checksum(flipped, 6)


class TestFaultPlan:
    def test_poisons_by_payload_and_predicate(self):
        payload = np.full(16, 7.0)
        plan = FaultPlan(poisoned_payloads=(payload,))
        assert plan.poisons(Query("t", payload.copy()))
        assert not plan.poisons(Query("t", np.full(16, 8.0)))
        pred = FaultPlan(is_poisoned=lambda q: q.tenant == "evil")
        assert pred.poisons(Query("evil", payload))
        assert not pred.poisons(Query("good", payload))


class TestWrapperInjection:
    def test_poisoned_batch_raises_before_inner_runs(self):
        inner = EchoStub()
        plan = FaultPlan(poisoned_payloads=(np.full(16, 2.0),))
        wrapped = FaultInjectingExecutor(inner, plan)
        with pytest.raises(InjectedFault, match="poisoned"):
            wrapped.run(make_batch([1.0, 2.0]))
        assert inner.calls == 0                 # never executed
        assert wrapped.injected["poisoned"] == 1
        # InjectedFault is persistent: not retryable.
        assert not issubclass(InjectedFault, TransientFault)

    def test_certain_transient_rate_always_raises_transient(self):
        inner = EchoStub()
        wrapped = FaultInjectingExecutor(
            inner, FaultPlan(transient_rate=1.0))
        for _ in range(3):
            with pytest.raises(TransientFault, match="injected"):
                wrapped.run(make_batch([1.0]))
        assert inner.calls == 0
        assert wrapped.injected["transient"] == 3

    def test_certain_corruption_is_caught_by_checksum(self):
        wrapped = FaultInjectingExecutor(
            EchoStub(), FaultPlan(corrupt_rate=1.0))
        with pytest.raises(CorruptedResult, match="checksum"):
            wrapped.run(make_batch([1.0, 2.0, 3.0]))
        assert wrapped.injected["corrupt"] == 1
        # Corruption is retryable by design.
        assert issubclass(CorruptedResult, TransientFault)

    def test_latency_spike_inflates_service_time(self):
        wrapped = FaultInjectingExecutor(
            EchoStub(), FaultPlan(latency_spike_rate=1.0,
                                  latency_spike_s=0.01))
        results, service_s = wrapped.run(make_batch([4.0]))
        assert results[0][0] == 4.0             # results untouched
        assert service_s >= 0.01
        assert wrapped.injected["latency_spike"] == 1

    def test_same_seed_same_fault_stream(self):
        plan = FaultPlan(seed=42, transient_rate=0.3)

        def stream():
            wrapped = FaultInjectingExecutor(EchoStub(), plan)
            outcomes = []
            for i in range(30):
                try:
                    wrapped.run(make_batch([float(i)]))
                    outcomes.append("ok")
                except TransientFault:
                    outcomes.append("transient")
            return outcomes

        first, second = stream(), stream()
        assert first == second
        assert "transient" in first and "ok" in first


class TestServerChaosStub:
    """Chaos over the stub: recovery behaviors without crypto cost."""

    def run_chaos(self, plan, values, *, attempts=6, tenants=None):
        wrapped = FaultInjectingExecutor(EchoStub(), plan)
        server = PlanServer(wrapped, ServeConfig(
            max_batch_queries=4, workers=1,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=attempts,
                                  backoff_base_s=0.001))))
        queries = [np.full(16, v) for v in values]
        results, snapshot = serve(None, queries, tenants=tenants,
                                  server=server,
                                  return_exceptions=True)
        return wrapped, server, results, snapshot

    def test_transient_storm_retries_to_full_goodput(self):
        wrapped, _, results, snapshot = self.run_chaos(
            FaultPlan(seed=7, transient_rate=0.2),
            [float(i) for i in range(12)])
        for i, r in enumerate(results):
            assert r[0] == float(i)
        assert snapshot["goodput"] == 1.0
        assert snapshot["failures"] == 0
        # The seeded storm actually fired and was retried away.
        assert wrapped.injected["transient"] >= 1
        assert snapshot["retries"] == wrapped.injected["transient"]

    def test_corruption_never_reaches_a_caller(self):
        wrapped, _, results, snapshot = self.run_chaos(
            FaultPlan(seed=3, corrupt_rate=0.3),
            [float(i) for i in range(12)])
        for i, r in enumerate(results):
            assert r[0] == float(i)             # clean values only
        assert wrapped.injected["corrupt"] >= 1
        assert snapshot["goodput"] == 1.0


class TestAcceptanceScenario:
    """ISSUE.md acceptance: 32 queries, 4 tenants, 10% transients, one
    poisoned query — blast radius of exactly one, bit-identical
    co-riders, poisoned tenant's breaker open at the end."""

    DECIMALS = 2
    WIDTH = 16
    POISON_IDX = 6                              # 6 % 4 == 2 -> tenant t2

    @pytest.fixture(scope="class")
    def params(self):
        return CkksParameters.toy()

    @pytest.fixture(scope="class")
    def workload(self):
        return scoring_workload(self.WIDTH)

    @pytest.fixture(scope="class")
    def keys(self):
        return TenantKeyCache()

    @pytest.fixture(scope="class")
    def queries(self):
        weights = 0.5 + np.arange(self.WIDTH) / (2.0 * self.WIDTH)
        step = 10.0 ** -self.DECIMALS
        rng = np.random.default_rng(2023)
        out = []
        while len(out) < 32:
            q = rng.uniform(0.1, 1.0, self.WIDTH)
            exact = float(np.dot(weights, q)) ** 2
            # Boundary guard (as in TestQuantizedPartitionInvariance):
            # keep scores far enough from a rounding boundary that toy
            # CKKS noise cannot flip the quantized value.
            frac = (exact / step) % 1.0
            if abs(frac - 0.5) * step > 5e-4:
                out.append(q)
        return out

    @pytest.fixture(scope="class")
    def tenants(self):
        return [f"t{i % 4}" for i in range(32)]

    @pytest.fixture(scope="class")
    def reference(self, workload, params, keys, queries, tenants):
        """Fault-free quantized run (same key cache, same tenants)."""
        results, snapshot = serve(
            workload, queries, params, tenants=tenants,
            config=ServeConfig(max_batch_queries=8, workers=1,
                               round_decimals=self.DECIMALS),
            key_cache=keys)
        assert snapshot["served"] == 32
        return results

    def test_seeded_chaos_isolates_the_poison(
            self, workload, params, keys, queries, tenants, reference):
        plan = FaultPlan(seed=1123, transient_rate=0.1,
                         poisoned_payloads=(queries[self.POISON_IDX],))
        executor = FaultInjectingExecutor(
            RealExecutor(workload, params, key_cache=keys,
                         round_decimals=self.DECIMALS),
            plan, checksum_decimals=self.DECIMALS)
        server = PlanServer(executor, ServeConfig(
            max_batch_queries=8, workers=1,
            round_decimals=self.DECIMALS,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=6,
                                  backoff_base_s=0.001),
                breaker_failures=1)))

        results, snapshot = serve(None, queries, tenants=tenants,
                                  server=server,
                                  return_exceptions=True)

        # Blast radius is exactly the poisoned query, typed + chained.
        assert isinstance(results[self.POISON_IDX], PoisonedQueryError)
        cause = results[self.POISON_IDX].__cause__
        assert isinstance(cause, InjectedFault)
        for i, r in enumerate(results):
            if i == self.POISON_IDX:
                continue
            # Co-riders are served bit-identical to the fault-free run
            # — under transient retries AND the bisection repack.
            assert np.array_equal(r, reference[i]), f"query {i}"

        # The poisoned tenant's breaker opened; others stayed closed.
        assert server.breaker("t2").state is BreakerState.OPEN
        for tenant in ("t0", "t1", "t3"):
            assert server.breaker(tenant).state is BreakerState.CLOSED

        assert snapshot["served"] == 31
        assert snapshot["failures"] == 1
        assert snapshot["failed_queries"] == 1
        # Isolating 1 of 8 co-riders takes exactly log2(8) bisections.
        assert snapshot["bisections"] == 3
        assert snapshot["goodput"] == pytest.approx(31 / 32)
        assert executor.injected["poisoned"] >= 1
