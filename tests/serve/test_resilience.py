"""Resilience primitives and their server integration (no crypto).

Unit tiers cover the deterministic state machines with injected clocks
(token bucket, circuit breaker, retry backoff, health monitor); the
server tiers drive :class:`PlanServer` over a crypto-free stub executor
so the scheduling behaviors — priority ordering, deadline expiry,
quota/breaker rejection, retry, bisection, load shedding — are staged
and asserted exactly.
"""

import asyncio
import random
import time

import numpy as np
import pytest

from repro.fhe.packing import SlotLayout
from repro.serve import (BreakerState, CircuitBreaker, CircuitOpen,
                         DeadlineExceeded, HealthMonitor, HealthState,
                         LoadShed, PlanServer, PoisonedQueryError,
                         QuotaExceeded, ResilienceConfig, RetryPolicy,
                         ServeConfig, TokenBucket, TransientFault)

LAYOUT = SlotLayout(num_slots=512, width=16)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class StubExecutor:
    """Echo executor (result = first value) with scriptable faults.

    ``faults(batch, call_number)`` returns an exception to raise or
    None to execute normally; every actual execution is recorded.
    """

    def __init__(self, delay_s=0.0, faults=None):
        self.layout = LAYOUT
        self.delay_s = delay_s
        self.faults = faults or (lambda batch, call: None)
        self.calls = 0
        self.executed = []

    def run(self, batch):
        self.calls += 1
        exc = self.faults(batch, self.calls)
        if exc is not None:
            raise exc
        if self.delay_s:
            time.sleep(self.delay_s)
        self.executed.append([float(q.values[0])
                              for q in batch.queries])
        return ([np.asarray(q.values[:1], dtype=float).copy()
                 for q in batch.queries],
                max(self.delay_s, 1e-6))


def run_async(coro):
    return asyncio.run(coro)


# -- unit tier -------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()     # burst spent, no time passed
        clock.advance(0.1)                  # +1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 3.0

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestCircuitBreaker:
    def make(self, clock, threshold=2, reset=1.0):
        return CircuitBreaker(failure_threshold=threshold,
                              reset_after_s=reset, clock=clock)

    def test_opens_after_consecutive_failures_only(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_success()            # resets the streak
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()              # the probe
        assert not breaker.allow()          # probe already in flight

    def test_probe_success_closes_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allow()
        breaker.record_failure()            # failed probe -> open again
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_snapshot_is_json_clean(self):
        snapshot = self.make(FakeClock()).snapshot()
        assert snapshot == {"state": "closed",
                            "consecutive_failures": 0,
                            "failure_threshold": 2}


class TestRetryPolicy:
    def test_backoff_grows_and_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, backoff_base_s=0.01,
                             backoff_multiplier=2.0, jitter=0.25)
        first = [policy.backoff_s(a, random.Random(7))
                 for a in range(3)]
        second = [policy.backoff_s(a, random.Random(7))
                  for a in range(3)]
        assert first == second              # seeded jitter
        for attempt, sleep in enumerate(first):
            base = 0.01 * 2.0 ** attempt
            assert base <= sleep < base * 1.25

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestHealthMonitor:
    CONFIG = ResilienceConfig(degrade_at=0.5, drain_at=0.9,
                              recover_ratio=0.6)

    def test_escalates_and_recovers_with_hysteresis(self):
        monitor = HealthMonitor(self.CONFIG)
        assert monitor.observe(0.4) is HealthState.HEALTHY
        assert monitor.observe(0.6) is HealthState.DEGRADED
        # Hysteresis: back under degrade_at is not enough to recover.
        assert monitor.observe(0.4) is HealthState.DEGRADED
        assert monitor.observe(0.2) is HealthState.HEALTHY
        assert monitor.observe(0.95) is HealthState.DRAINING
        assert monitor.observe(0.7) is HealthState.DRAINING
        assert monitor.observe(0.5) is HealthState.DEGRADED
        assert monitor.observe(0.1) is HealthState.HEALTHY
        assert monitor.transitions == 5

    def test_knob_scales_per_state(self):
        monitor = HealthMonitor(self.CONFIG)
        assert monitor.wait_scale == 1.0
        assert monitor.batch_scale == 1.0
        assert monitor.min_priority is None
        monitor.observe(0.6)
        assert monitor.wait_scale == self.CONFIG.degraded_wait_scale
        assert monitor.batch_scale == self.CONFIG.degraded_batch_scale
        assert monitor.min_priority == 0
        monitor.observe(0.95)
        assert monitor.wait_scale == 0.0
        assert monitor.batch_scale == self.CONFIG.draining_batch_scale
        assert monitor.min_priority == 1


# -- server tier -----------------------------------------------------------

class TestPriorityScheduling:
    def test_high_priority_batch_jumps_the_queue(self):
        executor = StubExecutor(delay_s=0.02)
        server = PlanServer(executor, ServeConfig(
            max_batch_queries=1, workers=1))

        async def go():
            async with server:
                blocker = asyncio.create_task(
                    server.submit(np.full(16, 1.0)))
                await asyncio.sleep(0.005)      # worker busy with it
                low = asyncio.create_task(
                    server.submit(np.full(16, 2.0), priority=0))
                high = asyncio.create_task(
                    server.submit(np.full(16, 3.0), priority=5))
                await asyncio.gather(blocker, low, high)

        run_async(go())
        assert executor.executed == [[1.0], [3.0], [2.0]]


class TestDeadlines:
    def test_already_expired_deadline_fails_at_submit(self):
        server = PlanServer(StubExecutor(), ServeConfig())

        async def go():
            async with server:
                with pytest.raises(DeadlineExceeded, match="already"):
                    await server.submit(np.ones(16), deadline_s=0.0)

        run_async(go())
        snapshot = server.metrics.snapshot()
        assert snapshot["expired"] == 1
        assert snapshot["rejected"] == 0        # separate from rejects
        assert snapshot["queue_depth"] == 0

    def test_queue_expiry_fails_fast_and_never_executes(self):
        executor = StubExecutor(delay_s=0.06)
        server = PlanServer(executor, ServeConfig(
            max_batch_queries=1, workers=1))

        async def go():
            async with server:
                blocker = asyncio.create_task(
                    server.submit(np.full(16, 1.0)))
                await asyncio.sleep(0.005)
                with pytest.raises(DeadlineExceeded, match="missed"):
                    await server.submit(np.full(16, 2.0),
                                        deadline_s=0.01)
                await blocker

        run_async(go())
        # The expired query never reached the executor.
        assert executor.executed == [[1.0]]
        snapshot = server.metrics.snapshot()
        assert snapshot["expired"] == 1
        assert snapshot["served"] == 1
        assert snapshot["failed_queries"] == 0
        assert snapshot["queue_depth"] == 0

    def test_deadline_tightens_the_flush_timer(self):
        """A lone query with a deadline must flush well before it, not
        sit out the full max_wait_s."""
        executor = StubExecutor()
        server = PlanServer(executor, ServeConfig(
            max_batch_queries=32, max_wait_s=30.0, workers=1))

        async def go():
            async with server:
                return await asyncio.wait_for(
                    server.submit(np.full(16, 4.0), deadline_s=0.2),
                    timeout=5)

        result = run_async(go())
        assert result[0] == 4.0
        assert server.metrics.snapshot()["expired"] == 0


class TestQuotas:
    def test_token_bucket_rejects_burst_overflow_per_tenant(self):
        config = ServeConfig(
            max_batch_queries=1,
            resilience=ResilienceConfig(tenant_qps=0.001,
                                        tenant_burst=2.0))
        server = PlanServer(StubExecutor(), config)

        async def go():
            async with server:
                await server.submit(np.ones(16), tenant="greedy")
                await server.submit(np.ones(16), tenant="greedy")
                with pytest.raises(QuotaExceeded, match="greedy"):
                    await server.submit(np.ones(16), tenant="greedy")
                # Another tenant has its own bucket.
                await server.submit(np.ones(16), tenant="modest")

        run_async(go())
        snapshot = server.metrics.snapshot()
        assert snapshot["served"] == 3
        assert snapshot["rejected_by_reason"] == {"quota": 1}


class TestRetry:
    def config(self, attempts):
        return ServeConfig(
            max_batch_queries=1, workers=1,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=attempts,
                                  backoff_base_s=0.001)))

    def test_transient_fault_retries_until_success(self):
        executor = StubExecutor(
            faults=lambda batch, call:
                TransientFault("flaky") if call <= 2 else None)
        server = PlanServer(executor, self.config(attempts=4))

        async def go():
            async with server:
                return await server.submit(np.full(16, 9.0))

        result = run_async(go())
        assert result[0] == 9.0
        snapshot = server.metrics.snapshot()
        assert snapshot["retries"] == 2
        assert snapshot["failures"] == 0
        assert snapshot["goodput"] == 1.0

    def test_exhausted_retries_poison_the_singleton(self):
        executor = StubExecutor(
            faults=lambda batch, call: TransientFault("always"))
        server = PlanServer(executor, self.config(attempts=2))

        async def go():
            async with server:
                with pytest.raises(PoisonedQueryError) as excinfo:
                    await server.submit(np.ones(16))
                return excinfo.value

        error = run_async(go())
        assert isinstance(error.__cause__, TransientFault)
        snapshot = server.metrics.snapshot()
        assert snapshot["retries"] == 1
        assert snapshot["failures"] == 1
        assert snapshot["failed_queries"] == 1
        assert snapshot["queue_depth"] == 0


class TestBisection:
    POISON = 13.0

    def executor(self):
        def faults(batch, call):
            if any(float(q.values[0]) == self.POISON
                   for q in batch.queries):
                return RuntimeError("persistent executor fault")
            return None
        return StubExecutor(faults=faults)

    def test_bisection_isolates_poison_and_serves_coriders(self):
        executor = self.executor()
        server = PlanServer(executor, ServeConfig(
            max_batch_queries=4, workers=1,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1))))
        values = [1.0, 2.0, self.POISON, 4.0]

        async def go():
            async with server:
                tasks = [asyncio.create_task(
                    server.submit(np.full(16, v))) for v in values]
                return await asyncio.gather(*tasks,
                                            return_exceptions=True)

        outcomes = run_async(go())
        assert isinstance(outcomes[2], PoisonedQueryError)
        for value, outcome in zip(values, outcomes):
            if value != self.POISON:
                assert outcome[0] == value
        snapshot = server.metrics.snapshot()
        assert snapshot["served"] == 3
        assert snapshot["failed_queries"] == 1
        assert snapshot["bisections"] == 2      # [1,2,13,4]->[13,4]->[13]
        assert snapshot["goodput"] == 0.75
        # The poison never executed; co-riders did.
        assert sorted(sum(executor.executed, [])) == [1.0, 2.0, 4.0]


class TestBreakerIntegration:
    def test_breaker_opens_fails_fast_and_recovers_via_probe(self):
        healthy = {"on": False}

        def faults(batch, call):
            if batch.tenant == "bad" and not healthy["on"]:
                return RuntimeError("tenant bug")
            return None

        executor = StubExecutor(faults=faults)
        server = PlanServer(executor, ServeConfig(
            max_batch_queries=1, workers=1,
            resilience=ResilienceConfig(
                retry=RetryPolicy(max_attempts=1),
                breaker_failures=2, breaker_reset_s=0.05)))

        async def go():
            async with server:
                for _ in range(2):
                    with pytest.raises(PoisonedQueryError):
                        await server.submit(np.ones(16), tenant="bad")
                calls_before = executor.calls
                # Open: fails fast, executor untouched.
                with pytest.raises(CircuitOpen, match="bad"):
                    await server.submit(np.ones(16), tenant="bad")
                assert executor.calls == calls_before
                assert server.breaker("bad").state is BreakerState.OPEN
                # Other tenants are unaffected.
                await server.submit(np.ones(16), tenant="good")
                # After the reset window, the half-open probe recovers.
                await asyncio.sleep(0.06)
                healthy["on"] = True
                result = await server.submit(np.full(16, 5.0),
                                             tenant="bad")
                assert result[0] == 5.0
                assert (server.breaker("bad").state
                        is BreakerState.CLOSED)

        run_async(go())
        snapshot = server.metrics.snapshot()
        assert snapshot["failures"] == 2
        assert snapshot["rejected_by_reason"] == {"breaker": 1}


class TestDegradation:
    def test_degraded_server_sheds_lowest_priority_first(self):
        executor = StubExecutor(delay_s=0.04)
        server = PlanServer(executor, ServeConfig(
            max_batch_queries=1, workers=1, max_queue_depth=4,
            resilience=ResilienceConfig(degrade_at=0.5, drain_at=0.9)))

        async def go():
            async with server:
                blockers = [asyncio.create_task(
                    server.submit(np.full(16, float(i))))
                    for i in range(2)]
                await asyncio.sleep(0.005)      # load 2/4 -> degraded
                with pytest.raises(LoadShed, match="degraded"):
                    await server.submit(np.ones(16), priority=-1)
                ok = asyncio.create_task(
                    server.submit(np.full(16, 7.0), priority=0))
                await asyncio.gather(*blockers, ok)

        run_async(go())
        snapshot = server.metrics.snapshot()
        assert snapshot["rejected_by_reason"] == {"shed": 1}
        assert snapshot["served"] == 3
        assert snapshot["health_transitions"] >= 2   # in and out
        assert snapshot["health_state"] == "healthy"  # recovered

    def test_degradation_shrinks_admission_knobs(self):
        server = PlanServer(StubExecutor(), ServeConfig(
            max_batch_queries=8, max_wait_s=0.1))
        assert server._effective_max_batch() == 8
        server.health.observe(0.6)                   # degraded
        assert server._effective_max_batch() == 4
        assert server.health.wait_scale == 0.25
        server.health.observe(0.95)                  # draining
        assert server._effective_max_batch() == 2
        assert server.health.wait_scale == 0.0

    def test_resilience_snapshot_shape(self):
        server = PlanServer(StubExecutor(), ServeConfig(
            resilience=ResilienceConfig(tenant_qps=10.0)))
        server.breaker("a").record_failure()
        server._quota("a")
        snapshot = server.resilience_snapshot()
        assert snapshot["health"]["state"] == "healthy"
        assert snapshot["breakers"]["a"]["consecutive_failures"] == 1
        assert snapshot["quotas"]["a"]["rate"] == 10.0
