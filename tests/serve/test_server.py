"""Real-execution serving: correctness, bit-identity, backpressure.

The precision story, tested in three tiers (CKKS is approximate, so the
tiers are the strongest claims that are actually true):

1. **Determinism (exact):** executing the shared plan on the *same*
   packed ciphertext is bit-identical however many times it runs, and
   the batched decode equals each per-query decode of the same
   execution residue-for-residue.
2. **Cross-packing (approximate):** a query served solo vs served in a
   batch decodes to the same value only up to encode/evaluate noise —
   asserted with np.allclose, not equality.
3. **Quantized serving (exact again):** with ``round_decimals`` set,
   served results are identical no matter how the query stream is
   partitioned into batches.  The property test guards its own
   validity by asserting every reference value sits well clear of a
   quantization boundary relative to the observed noise.
"""

import asyncio
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import engine
from repro.fhe.packing import SlotLayout
from repro.fhe.params import CkksParameters
from repro.serve import (Batch, PlanServer, Query, RealExecutor,
                         ResilienceConfig, ServeConfig, ServerSaturated,
                         TenantKeyCache, scoring_workload, serve,
                         shared_plan)

PARAMS = CkksParameters.toy()
WIDTH = 16
WORKLOAD = scoring_workload(WIDTH)
WEIGHTS = 0.5 + np.arange(WIDTH) / (2.0 * WIDTH)


def expected_score(values: np.ndarray) -> float:
    return float(np.dot(WEIGHTS, values)) ** 2


@pytest.fixture(scope="module")
def keys():
    return TenantKeyCache()


@pytest.fixture(scope="module")
def executor(keys):
    return RealExecutor(WORKLOAD, PARAMS, key_cache=keys)


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(17)
    return [rng.uniform(0.1, 1.0, WIDTH) for _ in range(6)]


def run_batch(executor, queries, tenant="t0"):
    batch = Batch(tenant=tenant, layout=executor.layout,
                  queries=[Query(tenant, q) for q in queries])
    results, seconds = executor.run(batch)
    assert seconds > 0
    return results


class TestBatchedCorrectness:
    def test_batched_results_match_plaintext_math(self, executor,
                                                  queries):
        for q, r in zip(queries, run_batch(executor, queries)):
            assert r.shape == (1,)
            assert r[0] == pytest.approx(expected_score(q), abs=1e-3)

    def test_batched_decode_is_bit_identical_to_per_query_decode(
            self, keys, executor, queries):
        """Same packed ciphertext, one execution per query: every
        replay is bit-identical, and the batched unpack returns exactly
        the slots a per-query decode sees."""
        ctx = keys.get("t0", PARAMS)
        plan = shared_plan(WORKLOAD, PARAMS)
        layout = executor.layout
        packed = layout.pack_many(queries)
        ct = ctx.encrypt(packed)

        batched_out = plan.execute(ctx, sources=[ct]).output
        batched_dec = ctx.decrypt(batched_out).real
        batched = layout.unpack_many(batched_dec, len(queries), take=1)

        for i in range(len(queries)):
            per_query_out = plan.execute(ctx, sources=[ct]).output
            assert engine.bit_identical(per_query_out, batched_out)
            per_query_dec = ctx.decrypt(per_query_out).real
            assert np.array_equal(per_query_dec, batched_dec)
            assert np.array_equal(
                per_query_dec[layout.window(i)][:1], batched[i])

    def test_solo_vs_batched_agree_to_noise(self, executor, queries):
        """Cross-packing is only noise-close, never exact — that gap is
        why quantized serving exists."""
        batched = run_batch(executor, queries)
        for q, r in zip(queries, batched):
            solo = run_batch(executor, [q])
            assert np.allclose(solo[0], r, atol=1e-3)


class TestQuantizedPartitionInvariance:
    DECIMALS = 2

    @pytest.fixture(scope="class")
    def quantized_executor(self, keys):
        return RealExecutor(WORKLOAD, PARAMS, key_cache=keys,
                            round_decimals=self.DECIMALS)

    @pytest.fixture(scope="class")
    def reference(self, quantized_executor, queries):
        """Solo-served quantized results, with the boundary guard that
        makes the property test non-flaky by construction."""
        step = 10.0 ** -self.DECIMALS
        refs = []
        for q in queries:
            exact = expected_score(q)
            # Distance from the rounding boundary (step/2 off-grid)
            # must dwarf the observed noise (max ~1e-4 at toy params).
            frac = (exact / step) % 1.0
            assert abs(frac - 0.5) * step > 5e-4, \
                "test inputs sit too close to a quantization boundary"
            refs.append(run_batch(quantized_executor, [q])[0])
            assert refs[-1][0] == pytest.approx(exact, abs=step)
        return refs

    @given(cuts=st.lists(st.integers(min_value=1, max_value=5),
                         max_size=3, unique=True))
    @settings(max_examples=8, deadline=None)
    def test_any_partition_serves_identical_results(
            self, cuts, quantized_executor, queries, reference):
        """Acceptance: partitioning the query stream into any batch
        arrangement yields identical (quantized) per-query results."""
        bounds = [0] + sorted(cuts) + [len(queries)]
        for lo, hi in zip(bounds, bounds[1:]):
            if lo == hi:
                continue
            results = run_batch(quantized_executor, queries[lo:hi])
            for offset, r in enumerate(results):
                assert np.array_equal(r, reference[lo + offset])


class TestPlanServer:
    def test_serve_returns_results_in_query_order(self, keys, queries):
        results, snapshot = serve(
            WORKLOAD, queries, PARAMS, key_cache=keys,
            config=ServeConfig(max_batch_queries=4))
        assert len(results) == len(queries)
        for q, r in zip(queries, results):
            assert r[0] == pytest.approx(expected_score(q), abs=1e-3)
        assert snapshot["served"] == len(queries)
        assert snapshot["batches"] >= 2
        assert snapshot["queue_depth"] == 0

    def test_multi_tenant_serving_isolates_key_domains(self, queries):
        keys = TenantKeyCache(max_resident=2)
        tenants = ["alice", "bob"] * 3
        results, snapshot = serve(WORKLOAD, queries, PARAMS,
                                  tenants=tenants, key_cache=keys,
                                  config=ServeConfig(max_batch_queries=3))
        for q, r in zip(queries, results):
            assert r[0] == pytest.approx(expected_score(q), abs=1e-3)
        # Two tenants, max 3 queries per batch -> one batch each.
        assert snapshot["batches"] == 2
        assert sorted(keys.resident_tenants) == ["alice", "bob"]
        assert keys.stats()["misses"] == 2

    def test_key_cache_evicts_least_recent_tenant(self):
        keys = TenantKeyCache(max_resident=2)
        for tenant in ("a", "b", "a", "c"):
            keys.get(tenant, PARAMS)
        stats = keys.stats()
        assert stats["evictions"] == 1 and stats["hits"] == 1
        assert keys.resident_tenants == ["a", "c"]      # b evicted

    def test_shared_plan_is_one_object_across_servers(self, keys):
        first = PlanServer.real(WORKLOAD, PARAMS, key_cache=keys)
        second = PlanServer.real(WORKLOAD, PARAMS, key_cache=keys)
        assert first.executor.plan is second.executor.plan

    def test_max_wait_flushes_partial_batch(self, keys, queries):
        """One lone query must not wait forever for co-riders."""
        server = PlanServer.real(
            WORKLOAD, PARAMS, key_cache=keys,
            config=ServeConfig(max_batch_queries=32, max_wait_s=0.01))

        async def one():
            async with server:
                return await asyncio.wait_for(
                    server.submit(queries[0]), timeout=30)

        result = asyncio.run(one())
        assert result[0] == pytest.approx(expected_score(queries[0]),
                                          abs=1e-3)
        assert server.metrics.snapshot()["batches"] == 1

    def test_backpressure_rejects_when_saturated(self, keys, queries):
        server = PlanServer.real(
            WORKLOAD, PARAMS, key_cache=keys,
            config=ServeConfig(max_batch_queries=2, max_queue_depth=2))

        async def overload():
            async with server:
                tasks = [asyncio.ensure_future(server.submit(q))
                         for q in queries[:2]]
                await asyncio.sleep(0)      # let both submissions admit
                with pytest.raises(ServerSaturated):
                    await server.submit(queries[2])
                return await asyncio.gather(*tasks)

        results = asyncio.run(overload())
        assert len(results) == 2
        snapshot = server.metrics.snapshot()
        assert snapshot["rejected"] == 1
        assert snapshot["served"] == 2

    def test_oversized_query_rejected_without_metrics_leak(self, keys):
        server = PlanServer.real(WORKLOAD, PARAMS, key_cache=keys)

        async def bad():
            async with server:
                with pytest.raises(ValueError, match="window"):
                    await server.submit(np.ones(WIDTH + 1))

        asyncio.run(bad())
        assert server.metrics.snapshot()["queue_depth"] == 0

    def test_submit_outside_lifecycle_raises(self, keys):
        server = PlanServer.real(WORKLOAD, PARAMS, key_cache=keys)
        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(server.submit(np.ones(4)))

    def test_metrics_snapshot_shape(self, keys, queries):
        _, snapshot = serve(WORKLOAD, queries[:2], PARAMS,
                            key_cache=keys)
        expected = {"plan_fingerprint", "submitted", "served",
                    "rejected", "rejected_by_reason", "failures",
                    "failed_queries", "expired", "retries",
                    "bisections", "health_state", "health_transitions",
                    "goodput", "batches", "queue_depth",
                    "mean_batch_size", "mean_occupancy",
                    "max_occupancy", "service_seconds", "service_qps",
                    "wall_seconds", "wall_qps", "latency_p50_s",
                    "latency_p99_s"}
        assert set(snapshot) == expected
        assert snapshot["latency_p99_s"] >= snapshot["latency_p50_s"] > 0
        assert 0 < snapshot["max_occupancy"] <= 1
        assert snapshot["failures"] == snapshot["failed_queries"] == 0
        assert snapshot["goodput"] == 1.0
        assert snapshot["health_state"] == "healthy"


class EchoStubExecutor:
    """Crypto-free executor: each query's result is its first value.

    ``delay_s`` holds the worker thread busy so admission races can be
    staged deterministically.
    """

    def __init__(self, delay_s: float = 0.0):
        self.layout = SlotLayout(num_slots=512, width=16)
        self.delay_s = delay_s
        self.executed: list[list[float]] = []

    def run(self, batch):
        if self.delay_s:
            time.sleep(self.delay_s)
        self.executed.append([float(q.values[0]) for q in batch.queries])
        return ([np.asarray(q.values[:1], dtype=float).copy()
                 for q in batch.queries],
                max(self.delay_s, 1e-6))


class TestBackpressureConcurrency:
    """Satellite: exact admit/reject accounting under parallel load."""

    def test_exact_accounting_and_no_in_flight_leak(self):
        executor = EchoStubExecutor(delay_s=0.03)
        # Degradation disabled (thresholds above any possible load) so
        # every reject is a pure queue-depth saturation, not a shed.
        server = PlanServer(executor, ServeConfig(
            max_batch_queries=1, max_queue_depth=3, workers=2,
            resilience=ResilienceConfig(degrade_at=10.0, drain_at=20.0)))
        total = 8

        async def storm():
            async with server:
                # All submits enter the event loop before any worker
                # resumes, so admissions are decided purely by the
                # queue-depth bound: exactly max_queue_depth admitted.
                tasks = [asyncio.create_task(
                    server.submit(np.full(16, float(i))))
                    for i in range(total)]
                return await asyncio.gather(*tasks,
                                            return_exceptions=True)

        outcomes = asyncio.run(storm())
        served = [r for r in outcomes if isinstance(r, np.ndarray)]
        rejected = [r for r in outcomes
                    if isinstance(r, ServerSaturated)]
        assert len(served) == 3
        assert len(rejected) == total - 3
        snapshot = server.metrics.snapshot()
        assert snapshot["submitted"] == total
        assert snapshot["served"] == 3
        assert snapshot["rejected"] == total - 3
        assert snapshot["rejected_by_reason"] == {"saturated": total - 3}
        # ServerSaturated callers must never leak in_flight.
        assert snapshot["queue_depth"] == 0
        assert snapshot["goodput"] == 1.0       # every admit was served


class TestStopTimerRace:
    """Satellite regression: stop() must cancel timers before draining.

    Before the fix, ``_timers`` were cancelled *after* ``queue.join()``
    and worker shutdown: a max-wait timer firing mid-stop dispatched a
    batch no worker would ever run (futures hang forever), and a timer
    firing after ``stop()`` returned crashed on ``put_nowait`` against
    ``self._queue = None``.
    """

    def test_stop_serves_pending_and_leaves_no_live_timers(self):
        executor = EchoStubExecutor(delay_s=0.02)
        server = PlanServer(executor, ServeConfig(
            max_batch_queries=32, max_wait_s=10.0, workers=1))

        async def go():
            loop_errors = []
            loop = asyncio.get_running_loop()
            loop.set_exception_handler(
                lambda loop, ctx: loop_errors.append(ctx))
            await server.start()
            pending = asyncio.create_task(server.submit(np.ones(16)))
            await asyncio.sleep(0.005)
            assert server._timers        # partial batch, 10 s timer
            stop_task = asyncio.create_task(server.stop())
            await asyncio.sleep(0)
            # stop() cancels every timer before the drain begins...
            assert not server._timers
            # ...and mid-stop submissions are refused instead of arming
            # a fresh timer against a dying queue.
            with pytest.raises(RuntimeError, match="stopping"):
                await server.submit(np.ones(16))
            await stop_task
            result = await pending
            # Give a stray (unfixed) timer the chance to crash the loop.
            await asyncio.sleep(0.02)
            assert not loop_errors
            return result

        result = asyncio.run(go())
        assert result[0] == 1.0          # flushed batch was served
