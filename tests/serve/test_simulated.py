"""Simulated serving lane: paper-scale throughput modeling.

Nothing here executes crypto — each batch costs its plan's BlockSim
cycles under GME features over the simulator's GPU clock, which is what
makes queries-per-second at N=2^16 a measurable number.  The headline
property is the amortization law: batching B queries into one
ciphertext multiplies service throughput by exactly B (one plan
execution serves the whole batch).
"""

import asyncio

import numpy as np
import pytest

from repro import engine
from repro.fhe.params import CkksParameters
from repro.gme.features import GME_FULL
from repro.serve import PlanServer, ServeConfig

PARAMS = CkksParameters.paper()
WIDTH = PARAMS.num_slots // 32


def drive(server, num_queries):
    async def _go():
        async with server:
            return await asyncio.gather(
                *(server.submit(np.zeros(4))
                  for _ in range(num_queries)))

    results = asyncio.run(_go())
    return results, server.metrics.snapshot()


def simulated(batch):
    return PlanServer.simulated(
        "helr", WIDTH, PARAMS, features=GME_FULL,
        config=ServeConfig(max_batch_queries=batch))


class TestSimulatedServing:
    def test_accepts_workload_name_or_plan(self):
        by_name = PlanServer.simulated("helr", WIDTH, PARAMS)
        by_plan = PlanServer.simulated(engine.compile("helr"), WIDTH)
        # engine.compile memoizes, so both servers model the same plan.
        assert by_name.executor.plan is by_plan.executor.plan

    def test_service_time_comes_from_blocksim(self):
        server = simulated(batch=16)
        plan = server.executor.plan
        expected = plan.simulate(GME_FULL).time_ms() / 1e3
        assert server.executor.seconds_per_execution == expected

    def test_service_qps_math(self):
        _, snapshot = drive(simulated(batch=16), num_queries=32)
        per_exec = simulated(batch=16).executor.seconds_per_execution
        assert snapshot["batches"] == 2
        assert snapshot["service_seconds"] == pytest.approx(2 * per_exec)
        assert snapshot["service_qps"] == pytest.approx(32 / (2 * per_exec))

    def test_batching_multiplies_throughput_by_batch_size(self):
        """Acceptance floor: >=2x batched-vs-sequential at <=50%
        occupancy.  The model gives exactly batch-size x."""
        _, batched = drive(simulated(batch=16), num_queries=32)
        _, sequential = drive(simulated(batch=1), num_queries=32)
        assert batched["mean_occupancy"] <= 0.5
        speedup = batched["service_qps"] / sequential["service_qps"]
        assert speedup == pytest.approx(16.0)
        assert speedup >= 2.0

    def test_results_are_shape_only(self):
        results, snapshot = drive(simulated(batch=8), num_queries=8)
        assert all(np.array_equal(r, np.zeros(1)) for r in results)
        assert snapshot["served"] == 8
        assert snapshot["mean_occupancy"] == pytest.approx(8 / 32)
