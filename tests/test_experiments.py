"""Smoke + shape tests for the experiment harnesses and support models."""

import pytest

from repro.baselines import CPU_LATTIGO, GPU_100X, TABLE7_US, TABLE8
from repro.blocksim.blocks import BlockType
from repro.experiments import table4, table6, table7, table9
from repro.rtlmodel import synthesize_all


class TestExperimentHarnesses:
    def test_table4_shape(self):
        rows = table4.run(count=500)
        assert len(rows) == 3
        for cells in rows.values():
            assert set(cells) == {"mod_red", "mod_add", "mod_mul"}

    def test_table6_within_band(self):
        for name, metrics in table6.run().items():
            for metric, (modeled, paper) in metrics.items():
                assert modeled == pytest.approx(paper, rel=0.15), \
                    f"{name}/{metric}"

    def test_table7_gme_always_wins(self):
        for name, cells in table7.run().items():
            assert cells["gme"][0] < cells["baseline"][0], name

    def test_table9_matches_paper_exactly(self):
        for name, cells in table9.run().items():
            for ext, (classified, paper) in cells.items():
                assert classified == paper, f"{name}/{ext}"

    def test_runner_module_lists_all(self):
        from repro.experiments.runner import ALL
        assert len(ALL) == 8


class TestComparatorModels:
    def test_platform_roofline_orders_platforms(self):
        """The V100 model must beat the CPU model on HEMult."""
        cpu = CPU_LATTIGO.block_time_us(BlockType.HE_MULT)
        gpu = GPU_100X.block_time_us(BlockType.HE_MULT)
        assert gpu < cpu / 10

    def test_100x_model_order_of_magnitude(self):
        """Analytic 100x estimate within ~5x of its published HEMult."""
        est = GPU_100X.block_time_us(BlockType.HE_MULT)
        published = TABLE7_US["100x"]["HEMult"]
        assert published / 5 < est < published * 5

    def test_published_tables_complete(self):
        assert set(TABLE7_US["GME"]) == {"CMult", "HEAdd", "HEMult",
                                         "Rotate", "Rescale"}
        assert "GME" in TABLE8 and "Baseline MI100" in TABLE8


class TestRtlModel:
    def test_three_extensions(self):
        results = synthesize_all()
        assert set(results) == {"cNoC", "MOD", "WMAC"}

    def test_cnoc_dominates_area(self):
        results = synthesize_all()
        assert results["cNoC"].area_mm2 > results["MOD"].area_mm2
        assert results["cNoC"].area_mm2 > results["WMAC"].area_mm2

    def test_power_positive_and_bounded(self):
        for result in synthesize_all().values():
            assert 0 < result.power_w < 100
