"""Smoke + shape tests for the experiment harnesses and support models."""

import pytest

from repro.baselines import CPU_LATTIGO, GPU_100X, TABLE7_US, TABLE8
from repro.blocksim.blocks import BlockType
from repro.experiments import table4, table6, table7, table9
from repro.rtlmodel import synthesize_all


class TestExperimentHarnesses:
    def test_table4_shape(self):
        rows = table4.run(count=500)
        assert len(rows) == 3
        for cells in rows.values():
            assert set(cells) == {"mod_red", "mod_add", "mod_mul"}

    def test_table6_within_band(self):
        for name, metrics in table6.run().items():
            for metric, (modeled, paper) in metrics.items():
                assert modeled == pytest.approx(paper, rel=0.15), \
                    f"{name}/{metric}"

    def test_table7_gme_always_wins(self):
        for name, cells in table7.run().items():
            assert cells["gme"][0] < cells["baseline"][0], name

    def test_table9_matches_paper_exactly(self):
        for name, cells in table9.run().items():
            for ext, (classified, paper) in cells.items():
                assert classified == paper, f"{name}/{ext}"

    def test_runner_module_lists_all(self):
        from repro.experiments.runner import ALL, HARNESSES
        assert len(ALL) == 9
        assert set(HARNESSES) == {"table4", "table6", "table7", "table8",
                                  "table9", "fig6", "fig7", "fig8",
                                  "opmix"}


class TestRunnerCli:
    def test_json_export_selected_harness(self, tmp_path):
        import json
        from repro.experiments.export import SCHEMA_VERSION
        from repro.experiments.runner import main
        out = tmp_path / "out.json"
        main(["--only", "table6", "--json", str(out)])
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["kind"] == "experiments.runner"
        assert doc["source"] == "traced"
        assert set(doc["harnesses"]) == {"table6"}
        assert doc["harnesses"]["table6"]["seconds"] >= 0
        result = doc["harnesses"]["table6"]["result"]
        assert result            # every cell is a (modeled, paper) pair
        for cells in result.values():
            for pair in cells.values():
                assert len(pair) == 2

    def test_export_envelope_reserves_its_keys(self):
        from repro.experiments.export import ENVELOPE_KEYS, envelope
        doc = envelope("bench.anything", lanes={})
        assert all(key in doc for key in ENVELOPE_KEYS)
        with pytest.raises(ValueError):
            envelope("bench.anything", kind="collides")

    def test_json_export_is_serializable_for_every_harness(self):
        """collect() output must survive json round-trips (tuples,
        enums and numpy scalars coerced)."""
        import json
        from repro.experiments.runner import collect
        doc = collect(["table4", "table6", "table9"])
        json.dumps(doc)

    def test_unknown_harness_rejected(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["--only", "nope"])

    def test_print_mode_respects_only(self, capsys):
        from repro.experiments.runner import main
        main(["--only", "table6"])
        out = capsys.readouterr().out
        assert "Table 6" in out
        assert "Table 4" not in out

    def test_list_prints_slugs_and_exits_cleanly(self, capsys):
        from repro.experiments.runner import HARNESSES, main
        main(["--list"])
        out = capsys.readouterr().out.split()
        assert out == sorted(HARNESSES)

    def test_unknown_source_rejected(self):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["--only", "table6", "--source", "nope"])

    def test_source_threads_into_registry_harnesses(self):
        """fig6-8/table8 accept the registry source; the others must
        not receive the kwarg (signature-driven threading)."""
        import inspect
        from repro.experiments.runner import HARNESSES, _source_kwargs
        for slug in ("fig6", "fig7", "fig8", "table8"):
            run = HARNESSES[slug].run
            assert "source" in inspect.signature(run).parameters
            assert _source_kwargs(run, "legacy") == {"source": "legacy"}
        for slug in ("table4", "table6", "table7", "table9"):
            assert _source_kwargs(HARNESSES[slug].run, "legacy") == {}

    def test_legacy_source_runs_from_the_cli_registry_path(self):
        """The golden-reference comparison is runnable from the CLI:
        the registry hands fig/table harnesses legacy golden plans."""
        from repro.workloads.registry import compile_workload
        legacy = compile_workload("boot", source="legacy")
        traced = compile_workload("boot", source="traced")
        assert legacy.trace is None and traced.trace is not None
        assert legacy.num_blocks == traced.num_blocks


class TestComparatorModels:
    def test_platform_roofline_orders_platforms(self):
        """The V100 model must beat the CPU model on HEMult."""
        cpu = CPU_LATTIGO.block_time_us(BlockType.HE_MULT)
        gpu = GPU_100X.block_time_us(BlockType.HE_MULT)
        assert gpu < cpu / 10

    def test_100x_model_order_of_magnitude(self):
        """Analytic 100x estimate within ~5x of its published HEMult."""
        est = GPU_100X.block_time_us(BlockType.HE_MULT)
        published = TABLE7_US["100x"]["HEMult"]
        assert published / 5 < est < published * 5

    def test_published_tables_complete(self):
        assert set(TABLE7_US["GME"]) == {"CMult", "HEAdd", "HEMult",
                                         "Rotate", "Rescale"}
        assert "GME" in TABLE8 and "Baseline MI100" in TABLE8


class TestRtlModel:
    def test_three_extensions(self):
        results = synthesize_all()
        assert set(results) == {"cNoC", "MOD", "WMAC"}

    def test_cnoc_dominates_area(self):
        results = synthesize_all()
        assert results["cNoC"].area_mm2 > results["MOD"].area_mm2
        assert results["cNoC"].area_mm2 > results["WMAC"].area_mm2

    def test_power_positive_and_bounded(self):
        for result in synthesize_all().values():
            assert 0 < result.power_w < 100
