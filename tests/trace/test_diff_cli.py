"""Edge-case coverage for the ``python -m repro.trace.diff`` CLI.

The happy paths live in ``test_trace_serialization.py``; this file pins
the failure modes: empty files, mismatched op-id ranges, and malformed
JSONL (unknown op kind) must fail with a clear message and exit code 2,
while identical traces keep exiting 0.
"""

import json

import pytest

from repro.fhe.params import CkksParameters
from repro.trace import OpTrace, SymbolicEvaluator, TracingEvaluator
from repro.trace.diff import main as diff_main


def _save_trace(tmp_path, name, num_rotations):
    ev = TracingEvaluator(SymbolicEvaluator(CkksParameters.toy()),
                          name=name)
    ct = ev.fresh(level=4)
    prod = ev.he_mult(ct, ct, rescale=True)
    for rotation in range(1, num_rotations + 1):
        ev.he_rotate(prod, rotation)
    path = tmp_path / f"{name}.jsonl"
    ev.trace.save_jsonl(str(path))
    return str(path)


class TestDiffCliEdgeCases:
    def test_identical_traces_exit_zero(self, tmp_path, capsys):
        a = _save_trace(tmp_path, "a", num_rotations=2)
        assert diff_main([a, a]) == 0
        assert "(no deltas)" in capsys.readouterr().out

    def test_mismatched_op_id_ranges_exit_one(self, tmp_path, capsys):
        """Traces of different lengths report deltas and exit 1."""
        a = _save_trace(tmp_path, "a", num_rotations=2)
        b = _save_trace(tmp_path, "b", num_rotations=5)
        assert diff_main([a, b]) == 1
        out = capsys.readouterr().out
        assert "he_rotate" in out
        assert "4 ops" in out and "7 ops" in out

    def test_empty_trace_file_exits_two(self, tmp_path, capsys):
        a = _save_trace(tmp_path, "a", num_rotations=1)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert diff_main([a, str(empty)]) == 2
        err = capsys.readouterr().err
        assert "empty trace file" in err
        assert "empty.jsonl" in err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        a = _save_trace(tmp_path, "a", num_rotations=1)
        assert diff_main([a, str(tmp_path / "nope.jsonl")]) == 2
        assert "nope.jsonl" in capsys.readouterr().err

    def test_unknown_op_kind_fails_with_clear_message(self, tmp_path,
                                                      capsys):
        a = _save_trace(tmp_path, "a", num_rotations=1)
        lines = open(a).read().splitlines()
        doc = json.loads(lines[1])
        doc["kind"] = "he_frobnicate"
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join([lines[0], json.dumps(doc)]
                                 + lines[2:]) + "\n")
        assert diff_main([a, str(bad)]) == 2
        err = capsys.readouterr().err
        assert "bad.jsonl" in err
        assert "unknown op kind 'he_frobnicate'" in err
        assert f"op {doc['op_id']}" in err

    def test_unknown_op_kind_load_error_names_the_op(self, tmp_path):
        """OpTrace.load_jsonl itself raises a self-describing ValueError."""
        a = _save_trace(tmp_path, "a", num_rotations=1)
        lines = open(a).read().splitlines()
        doc = json.loads(lines[1])
        doc["kind"] = "warp_core_breach"
        bad = tmp_path / "bad.jsonl"
        bad.write_text("\n".join([lines[0], json.dumps(doc)]) + "\n")
        with pytest.raises(ValueError,
                           match=r"op 0: unknown op kind "
                                 r"'warp_core_breach'"):
            OpTrace.load_jsonl(str(bad))
