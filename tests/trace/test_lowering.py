"""Lowering tests: trace -> BlockSim DAG, and the full round trip."""

import networkx as nx
import numpy as np
import pytest

from repro.blocksim import BlockGraphSimulator, BlockType
from repro.fhe import CkksContext
from repro.fhe.params import CkksParameters
from repro.gme.features import GME_FULL, cumulative_configs
from repro.trace import (SymbolicEvaluator, TracingEvaluator,
                         assert_workload_dag, dag_violations, lower_trace)
from repro.workloads import EncryptedConvLayer


@pytest.fixture()
def sym():
    return TracingEvaluator(SymbolicEvaluator(CkksParameters.toy()))


def _blocks(graph):
    return {n: d["block"] for n, d in graph.nodes(data=True)}


class TestLowering:
    def test_plumbing_is_transparent(self, sym):
        ct = sym.fresh(level=5)
        a = sym.he_square(ct, rescale=False)
        dropped = sym.mod_drop(a, 2)
        sym.he_square(dropped, rescale=False)
        graph = lower_trace(sym.trace)
        blocks = _blocks(graph)
        assert len(blocks) == 2                 # sources + drops elided
        (first, second) = sorted(blocks, key=lambda n:
                                 blocks[n].level, reverse=True)
        assert graph.has_edge(first, second)    # edge skips the mod_drop
        assert blocks[second].level == 3

    def test_implicit_rescale_expands(self, sym):
        ct = sym.fresh(level=4)
        sym.he_mult(ct, ct, rescale=True)
        graph = lower_trace(sym.trace)
        types = [b.block_type for b in _blocks(graph).values()]
        assert sorted(t.value for t in types) \
            == [BlockType.HE_MULT.value, BlockType.HE_RESCALE.value]

    def test_rescale_expansion_feeds_consumers(self, sym):
        ct = sym.fresh(level=4)
        prod = sym.he_mult(ct, ct, rescale=True)
        sym.he_rotate(prod, 1)
        graph = lower_trace(sym.trace)
        blocks = _blocks(graph)
        rot = next(n for n, b in blocks.items()
                   if b.block_type is BlockType.HE_ROTATE)
        (pred,) = graph.predecessors(rot)
        assert blocks[pred].block_type is BlockType.HE_RESCALE

    def test_refresh_marks_consumer(self, sym):
        ct = sym.fresh(level=1)
        raised = sym.refresh(ct, 5)
        sym.he_square(raised, rescale=False)
        graph = lower_trace(sym.trace)
        (mult,) = [b for b in _blocks(graph).values()
                   if b.block_type is BlockType.HE_MULT]
        assert mult.metadata.get("refresh") is True
        assert dag_violations(graph) == []

    def test_rotation_metadata(self, sym):
        ct = sym.fresh(level=4)
        sym.he_rotate(ct, 7)
        sym.he_conjugate(ct)
        graph = lower_trace(sym.trace)
        keys = {b.metadata.get("key")
                for b in _blocks(graph).values()}
        assert keys == {"rot-7", "conj"}
        for block in _blocks(graph).values():
            assert block.metadata["keyswitch"]["dnum"] \
                == sym.params.dnum

    def test_edge_bytes_use_producer_level(self, sym):
        ct = sym.fresh(level=4)
        a = sym.he_square(ct, rescale=False)
        sym.rescale(a)
        graph = lower_trace(sym.trace)
        blocks = _blocks(graph)
        mult = next(n for n, b in blocks.items()
                    if b.block_type is BlockType.HE_MULT)
        rescale = next(n for n, b in blocks.items()
                       if b.block_type is BlockType.HE_RESCALE)
        params = sym.params
        expected = 2 * 5 * params.ring_degree * params.prime_bits / 8
        assert graph[mult][rescale]["bytes"] == pytest.approx(expected)

    def test_prefix_and_regions_name_nodes(self, sym):
        with sym.region("stage0"):
            sym.he_rotate(sym.fresh(level=2), 1)
        graph = lower_trace(sym.trace, prefix="wl")
        assert list(graph.nodes) == ["wl/stage0/rot0"]

    def test_mod_raise_level_is_output_level(self, sym):
        ct = sym.fresh(level=0)
        sym.mod_raise(ct)
        graph = lower_trace(sym.trace)
        (block,) = _blocks(graph).values()
        assert block.block_type is BlockType.MOD_RAISE
        assert block.level == sym.params.max_level


class TestRoundTrip:
    """Acceptance: plain CkksEvaluator program -> trace -> DAG -> sim."""

    @pytest.fixture(scope="class")
    def ctx(self):
        return CkksContext.toy(seed=13)

    @pytest.fixture(scope="class")
    def traced_conv(self, ctx):
        tev = TracingEvaluator(ctx.evaluator, name="conv")
        kernel = np.array([[0.0, 0.1, 0.0], [0.1, 0.5, 0.1],
                           [0.0, 0.1, 0.0]])
        layer = EncryptedConvLayer(ctx, image_size=4, kernel=kernel,
                                   evaluator=tev)
        rng = np.random.default_rng(3)
        image = rng.uniform(0, 1, (4, 4))
        out = layer.apply(ctx.encrypt(image.flatten()))
        return tev, layer, image, out

    def test_traced_functional_result_still_correct(self, ctx,
                                                    traced_conv):
        _, layer, image, out = traced_conv
        got = ctx.decrypt(out)[:16].real.reshape(4, 4)
        assert np.max(np.abs(got - layer.reference(image))) < 1e-3

    def test_lowered_dag_structure(self, ctx, traced_conv):
        tev, *_ = traced_conv
        graph = lower_trace(tev.trace, prefix="conv")
        assert_workload_dag(graph, params=ctx.params,
                            require_keyswitch_meta=True)
        types = [b.block_type for b in _blocks(graph).values()]
        # 5 non-zero taps: 4 rotations (center tap needs none) + 5
        # masked plaintext multiplies + 4 accumulating adds.
        assert types.count(BlockType.HE_ROTATE) == 4
        assert types.count(BlockType.POLY_MULT) == 5
        assert types.count(BlockType.HE_ADD) == 4

    def test_simulates_under_every_cumulative_config(self, ctx,
                                                     traced_conv):
        tev, *_ = traced_conv
        graph = lower_trace(tev.trace, prefix="conv")
        for features in cumulative_configs() + [GME_FULL]:
            metrics = BlockGraphSimulator(
                features, params=ctx.params).run(graph, "conv")
            assert metrics.blocks == graph.number_of_nodes()
            assert metrics.cycles > 0

    def test_lowered_graph_is_dag_with_positive_edges(self, ctx,
                                                      traced_conv):
        tev, *_ = traced_conv
        graph = lower_trace(tev.trace)
        assert nx.is_directed_acyclic_graph(graph)
        assert all(d["bytes"] > 0
                   for _, _, d in graph.edges(data=True))
