"""Trace pass pipeline: validation, rescale expansion, hoist inference."""

import pytest

from repro.fhe.params import CkksParameters
from repro.trace import (DEFAULT_PASSES, OpKind, SymbolicEvaluator,
                         TraceValidationError, TracingEvaluator,
                         expand_implicit_rescales, infer_hoist_groups,
                         run_passes, validate_trace)
from repro.trace.ir import TraceOp


@pytest.fixture()
def sym():
    return TracingEvaluator(SymbolicEvaluator(CkksParameters.toy()))


def _kinds(trace):
    return [op.kind for op in trace.ops]


class TestValidateTrace:
    def test_healthy_trace_passes_unchanged(self, sym):
        ct = sym.fresh(level=4)
        sym.he_mult(ct, ct, rescale=True)
        assert validate_trace(sym.trace) is sym.trace

    def test_forward_reference_rejected(self, sym):
        ct = sym.fresh(level=4)
        sym.he_square(ct, rescale=False)
        sym.trace.ops[1].inputs = (5,)
        with pytest.raises(TraceValidationError, match="earlier op"):
            validate_trace(sym.trace)

    def test_level_out_of_range_rejected(self, sym):
        sym.he_square(sym.fresh(level=2), rescale=False)
        sym.trace.ops[0].level = 99
        with pytest.raises(TraceValidationError, match="outside"):
            validate_trace(sym.trace)

    def test_keyswitch_without_key_rejected(self, sym):
        ct = sym.fresh(level=4)
        sym.he_rotate(ct, 3)
        sym.trace.ops[-1].key = None
        with pytest.raises(TraceValidationError, match="without a key"):
            validate_trace(sym.trace)


class TestExpandImplicitRescales:
    def test_fused_op_splits_into_op_plus_rescale(self, sym):
        ct = sym.fresh(level=4)
        sym.he_mult(ct, ct, rescale=True)
        out = expand_implicit_rescales(sym.trace)
        assert _kinds(out) == [OpKind.SOURCE, OpKind.HE_MULT,
                               OpKind.RESCALE]
        mult, rescale = out.ops[1], out.ops[2]
        assert "rescaled" not in mult.meta
        assert mult.out_level == 4
        assert rescale.inputs == (mult.op_id,)
        assert rescale.level == 4 and rescale.out_level == 3

    def test_consumers_follow_the_rescale(self, sym):
        ct = sym.fresh(level=4)
        prod = sym.he_mult(ct, ct, rescale=True)
        sym.he_rotate(prod, 1)
        out = expand_implicit_rescales(sym.trace)
        rot = out.ops[-1]
        assert rot.kind is OpKind.HE_ROTATE
        assert out.ops[rot.inputs[0]].kind is OpKind.RESCALE

    def test_idempotent(self, sym):
        ct = sym.fresh(level=4)
        sym.he_mult(ct, ct, rescale=True)
        once = expand_implicit_rescales(sym.trace)
        assert expand_implicit_rescales(once) is once

    def test_payloads_follow_their_ops(self, sym):
        ct = sym.fresh(level=4)
        sym.poly_mult(ct, sym.plaintext(), rescale=True)
        out = expand_implicit_rescales(sym.trace)
        (payload_id,) = out.payloads
        assert out.ops[payload_id].kind is OpKind.POLY_MULT

    def test_explicit_rescales_untouched(self, sym):
        ct = sym.fresh(level=4)
        a = sym.he_square(ct, rescale=False)
        sym.rescale(a)
        out = expand_implicit_rescales(sym.trace)
        assert out is sym.trace


class TestInferHoistGroups:
    def test_rotations_of_one_ciphertext_share_a_group(self, sym):
        ct = sym.fresh(level=4)
        sym.he_rotate(ct, 1)
        sym.he_rotate(ct, 2)
        sym.he_conjugate(ct)
        out = infer_hoist_groups(sym.trace)
        groups = {op.hoist_group for op in out.ops
                  if op.kind in (OpKind.HE_ROTATE, OpKind.CONJUGATE)}
        assert len(groups) == 1 and None not in groups
        assert all(op.meta.get("inferred_hoist") for op in out.ops
                   if op.hoist_group is not None)

    def test_chained_rotations_stay_ungrouped(self, sym):
        ct = sym.fresh(level=4)
        ct = sym.he_rotate(ct, 1)
        ct = sym.he_rotate(ct, 2)
        out = infer_hoist_groups(sym.trace)
        assert out is sym.trace

    def test_recorded_hoist_groups_untouched(self, sym):
        ct = sym.fresh(level=4)
        sym.hoisted_rotations(ct, [1, 2, 3])
        recorded = {op.op_id: op.hoist_group for op in sym.trace.ops}
        out = infer_hoist_groups(sym.trace)
        for op in out.ops:
            if recorded[op.op_id] is not None:
                assert op.hoist_group == recorded[op.op_id]

    def test_inferred_numbering_continues_after_recorded(self, sym):
        ct = sym.fresh(level=4)
        sym.hoisted_rotations(ct, [1, 2])
        other = sym.fresh(level=4)
        sym.he_rotate(other, 1)
        sym.he_rotate(other, 5)
        out = infer_hoist_groups(sym.trace)
        recorded = {op.hoist_group for op in sym.trace.ops
                    if op.hoist_group is not None}
        inferred = {op.hoist_group for op in out.ops
                    if op.meta.get("inferred_hoist")}
        assert inferred and not (inferred & recorded)


class TestPipeline:
    def test_default_pipeline_runs_in_order(self, sym):
        ct = sym.fresh(level=4)
        sym.he_mult(ct, ct, rescale=True)
        sym.he_rotate(ct, 1)
        sym.he_rotate(ct, 2)
        out = run_passes(sym.trace, DEFAULT_PASSES)
        kinds = _kinds(out)
        assert OpKind.RESCALE in kinds
        rotations = [op for op in out.ops
                     if op.kind is OpKind.HE_ROTATE]
        assert rotations[0].hoist_group == rotations[1].hoist_group \
            is not None

    def test_empty_pipeline_is_identity(self, sym):
        sym.fresh(level=2)
        assert run_passes(sym.trace, ()) is sym.trace

    def test_validation_passes_on_expanded_trace(self, sym):
        ct = sym.fresh(level=4)
        sym.scalar_mult(ct, 0.5, rescale=True)
        out = run_passes(sym.trace, DEFAULT_PASSES)
        assert validate_trace(out) is out

    def test_rescale_shape_checked(self):
        params = CkksParameters.toy()
        from repro.trace import OpTrace
        trace = OpTrace(params=params)
        trace.append(TraceOp(op_id=0, kind=OpKind.SOURCE, inputs=(),
                             level=4, out_level=4))
        trace.append(TraceOp(op_id=1, kind=OpKind.RESCALE, inputs=(0,),
                             level=4, out_level=4))
        with pytest.raises(TraceValidationError, match="not one level"):
            validate_trace(trace)
