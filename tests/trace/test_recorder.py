"""Recorder tests: real-evaluator hooks, identity data flow, speed."""

import time

import numpy as np
import pytest

from repro.fhe import CkksContext
from repro.fhe.params import CkksParameters
from repro.trace import (OpKind, SymbolicEvaluator, TracingEvaluator)
from repro.workloads.programs import bootstrap_program


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.toy(seed=11)


def _kinds(trace):
    return [op.kind for op in trace.ops]


class TestRealEvaluatorTracing:
    def test_ops_recorded_with_dataflow(self, ctx):
        tev = TracingEvaluator(ctx.evaluator, name="t")
        ct = ctx.encrypt(np.arange(8) / 8)
        prod = tev.he_mult(ct, ct)
        rot = tev.he_rotate(prod, 3)
        tev.he_add(rot, prod)
        kinds = _kinds(tev.trace)
        assert kinds == [OpKind.SOURCE, OpKind.HE_MULT, OpKind.HE_ROTATE,
                         OpKind.HE_ADD]
        mult, rot_op, add = tev.trace.ops[1:]
        assert mult.inputs == (0, 0)           # both operands = source
        assert rot_op.inputs == (1,)
        assert add.inputs == (2, 1)
        assert rot_op.key == "rot-3"
        assert rot_op.meta["rotation"] == 3
        assert mult.key == "relin"
        assert mult.meta["dnum"] == ctx.params.dnum

    def test_tracing_is_transparent_to_results(self, ctx):
        """Traced execution returns the exact same ciphertext values."""
        values = np.arange(8) / 10
        plain_ev = ctx.evaluator
        traced_ev = TracingEvaluator(ctx.evaluator)
        ct = ctx.encrypt(values)
        expected = ctx.decrypt(plain_ev.he_rotate(
            plain_ev.he_mult(ct, ct), 2))
        got = ctx.decrypt(traced_ev.he_rotate(
            traced_ev.he_mult(ct, ct), 2))
        assert np.allclose(got, expected)

    def test_source_dedup(self, ctx):
        tev = TracingEvaluator(ctx.evaluator)
        ct = ctx.encrypt([0.1] * 4)
        tev.he_add(ct, ct)
        tev.he_mult(ct, ct)
        assert _kinds(tev.trace).count(OpKind.SOURCE) == 1

    def test_levels_recorded(self, ctx):
        tev = TracingEvaluator(ctx.evaluator)
        ct = ctx.encrypt([0.5] * 4)
        out = tev.he_mult(ct, ct)               # implicit rescale
        op = tev.trace.ops[-1]
        assert op.level == ct.level
        assert op.out_level == out.level == ct.level - 1
        assert op.meta["rescaled"] is True

    def test_hoisted_batch_shares_group_and_matches_sequential(self, ctx):
        tev = TracingEvaluator(ctx.evaluator)
        ct = ctx.encrypt(np.arange(6) / 6)
        rotated = tev.hoisted_rotations(ct, [0, 1, 2])
        hoists = [op for op in tev.trace.ops if op.kind is OpKind.HOIST]
        rots = [op for op in tev.trace.ops
                if op.kind is OpKind.HE_ROTATE]
        assert len(hoists) == 1
        assert len(rots) == 2
        assert {op.hoist_group for op in rots} \
            == {hoists[0].hoist_group}
        assert [op for op in tev.trace.ops
                if op.kind is OpKind.COPY]      # the rotation-by-0
        # Bit-exactness with the untraced sequential path.
        for amount in (1, 2):
            expected = ctx.decrypt(ctx.evaluator.he_rotate(ct, amount))
            assert np.allclose(ctx.decrypt(rotated[amount]), expected)

    def test_region_labels(self, ctx):
        tev = TracingEvaluator(ctx.evaluator)
        ct = ctx.encrypt([0.2] * 4)
        with tev.region("outer"):
            with tev.region("inner"):
                tev.he_add(ct, ct)
        assert tev.trace.ops[-1].region == "outer/inner"

    def test_keyswitch_helpers(self, ctx):
        tev = TracingEvaluator(ctx.evaluator)
        ct = ctx.encrypt([0.2] * 4)
        tev.he_rotate(ct, 1)
        tev.he_conjugate(ct)
        assert tev.trace.keys_used() == {"rot-1", "conj"}
        assert len(tev.trace.keyswitch_ops()) == 2


class TestSymbolicTracingSpeed:
    def test_paper_scale_bootstrap_traces_fast(self):
        """Acceptance: symbolic paper-scale bootstrap in well under 5s."""
        params = CkksParameters.paper()
        start = time.perf_counter()
        tev = TracingEvaluator(SymbolicEvaluator(params), name="boot")
        with tev.region("boot"):
            bootstrap_program(tev, tev.fresh(level=0))
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0
        assert len(tev.trace) > 300
        counts = tev.trace.counts_by_kind()
        assert counts[OpKind.MOD_RAISE] == 1
        assert counts[OpKind.HOIST] == 2 * params.fft_iterations
