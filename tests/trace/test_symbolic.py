"""Semantics of the shape-only symbolic evaluator."""

import pytest

from repro.fhe.params import CkksParameters
from repro.trace import SymbolicEvaluator


@pytest.fixture(scope="module")
def params():
    return CkksParameters.toy()


@pytest.fixture()
def ev(params):
    return SymbolicEvaluator(params)


class TestLevels:
    def test_fresh_defaults_to_max_level(self, ev, params):
        ct = ev.fresh()
        assert ct.level == params.max_level
        assert ct.scale == params.scale

    def test_fresh_rejects_out_of_range(self, ev, params):
        with pytest.raises(ValueError):
            ev.fresh(level=params.max_level + 1)
        with pytest.raises(ValueError):
            ev.fresh(level=-1)

    def test_rescale_consumes_level_and_scale(self, ev, params):
        ct = ev.fresh(level=3, scale=params.scale ** 2)
        out = ev.rescale(ct)
        assert out.level == 2
        assert out.scale == pytest.approx(
            params.scale ** 2 / params.moduli[3])

    def test_rescale_at_level_zero_raises(self, ev):
        with pytest.raises(ValueError):
            ev.rescale(ev.fresh(level=0))

    def test_mod_drop(self, ev):
        ct = ev.fresh(level=4)
        assert ev.mod_drop(ct, 2).level == 2
        with pytest.raises(ValueError):
            ev.mod_drop(ct, 5)

    def test_binary_ops_align_to_lower_level(self, ev):
        a, b = ev.fresh(level=5), ev.fresh(level=2)
        assert ev.he_add(a, b).level == 2
        assert ev.he_mult(a, b, rescale=False).level == 2

    def test_mult_with_rescale_drops_one_level(self, ev):
        a = ev.fresh(level=4)
        assert ev.he_mult(a, a, rescale=True).level == 3
        assert ev.he_square(a, rescale=True).level == 3
        assert ev.scalar_mult(a, 2.0, rescale=True).level == 3
        assert ev.poly_mult(a, ev.plaintext(), rescale=True).level == 3

    def test_rotation_preserves_shape(self, ev):
        ct = ev.fresh(level=3)
        out = ev.he_rotate(ct, 5)
        assert (out.level, out.scale) == (ct.level, ct.scale)
        assert out is not ct

    def test_mod_raise_and_refresh(self, ev, params):
        ct = ev.fresh(level=0)
        assert ev.mod_raise(ct).level == params.max_level
        assert ev.refresh(ct, 3).level == 3
        with pytest.raises(ValueError):
            ev.refresh(ct, params.max_level + 1)


class TestScales:
    def test_mult_composes_scales(self, ev, params):
        a = ev.fresh(level=4)
        out = ev.he_mult(a, a, rescale=False)
        assert out.scale == pytest.approx(params.scale ** 2)

    def test_scalar_mult_scales_by_delta(self, ev, params):
        a = ev.fresh(level=4)
        out = ev.scalar_mult(a, 0.5, rescale=False)
        assert out.scale == pytest.approx(params.scale ** 2)

    def test_additive_ops_keep_scale(self, ev, params):
        a = ev.fresh(level=4)
        for out in (ev.scalar_add(a, 1.0), ev.scalar_mult_int(a, 3),
                    ev.poly_add(a, ev.plaintext()), ev.he_add(a, a),
                    ev.he_sub(a, a)):
            assert out.scale == params.scale


class TestHoisting:
    def test_hoisted_rotations_cover_requested_amounts(self, ev, params):
        ct = ev.fresh(level=3)
        out = ev.hoisted_rotations(ct, [0, 1, 7, 7 + params.num_slots])
        assert set(out) == {0, 1, 7}
        for rotated in out.values():
            assert rotated.level == 3

    def test_rotate_hoisted_matches_plain_shape(self, ev):
        ct = ev.fresh(level=4)
        hoisted = ev.hoist(ct)
        direct = ev.he_rotate(ct, 3)
        via_hoist = ev.rotate_hoisted(hoisted, 3)
        assert (direct.level, direct.scale) \
            == (via_hoist.level, via_hoist.scale)
        conj = ev.conjugate_hoisted(hoisted)
        assert conj.level == 4
