"""OpTrace JSONL serialization: exact round-trip + the diff CLI."""

import pytest

from repro.fhe.params import CkksParameters
from repro.trace import (OpTrace, SymbolicEvaluator, TracingEvaluator,
                         lower_trace)
from repro.trace.diff import count_deltas, main as diff_main
from repro.workloads.registry import compile_workload


def _record_toy_trace(params=None):
    ev = TracingEvaluator(SymbolicEvaluator(params
                                            or CkksParameters.toy()),
                          name="toy")
    ct = ev.fresh(level=4)
    prod = ev.he_mult(ct, ct, rescale=True)
    with ev.region("stage"):
        for rotation in (1, 2):
            ev.he_rotate(prod, rotation)
    ev.scalar_add(prod, 0.25 + 0.5j)
    ev.scalar_mult(prod, -1.5, rescale=False)
    ev.poly_mult(prod, ev.plaintext(), rescale=False)
    ev.mod_drop(prod, 1)
    return ev.trace


class TestRoundTrip:
    def test_toy_trace_roundtrips_exactly(self, tmp_path):
        trace = _record_toy_trace()
        path = tmp_path / "toy.jsonl"
        trace.save_jsonl(str(path))
        back = OpTrace.load_jsonl(str(path))
        assert back == trace
        assert back.params == trace.params
        assert [op for op in back.ops] == [op for op in trace.ops]

    def test_complex_scalar_meta_survives(self, tmp_path):
        trace = _record_toy_trace()
        path = tmp_path / "toy.jsonl"
        trace.save_jsonl(str(path))
        back = OpTrace.load_jsonl(str(path))
        values = [op.meta["value"] for op in back.ops if "value" in op.meta]
        assert (0.25 + 0.5j) in values

    def test_paper_scale_symbolic_trace_roundtrips(self, tmp_path):
        """Satellite: exact round-trip at paper-scale symbolic params."""
        trace = compile_workload("boot").trace
        path = tmp_path / "boot.jsonl"
        trace.save_jsonl(str(path))
        back = OpTrace.load_jsonl(str(path))
        assert back == trace
        assert back.params.ring_degree == 1 << 16

    def test_loaded_trace_lowers_to_the_same_graph_shape(self, tmp_path):
        trace = _record_toy_trace()
        path = tmp_path / "toy.jsonl"
        trace.save_jsonl(str(path))
        original = lower_trace(trace)
        reloaded = lower_trace(OpTrace.load_jsonl(str(path)))
        assert sorted(original.nodes) == sorted(reloaded.nodes)
        assert sorted(original.edges) == sorted(reloaded.edges)

    def test_payloads_are_not_serialized(self, tmp_path):
        trace = _record_toy_trace()
        assert trace.payloads
        path = tmp_path / "toy.jsonl"
        trace.save_jsonl(str(path))
        assert not OpTrace.load_jsonl(str(path)).payloads

    def test_rejects_non_trace_files(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"something": "else"}\n')
        with pytest.raises(ValueError, match="not an OpTrace"):
            OpTrace.load_jsonl(str(path))


class TestDiffTool:
    @pytest.fixture()
    def pair(self, tmp_path):
        trace = _record_toy_trace()
        a = tmp_path / "a.jsonl"
        trace.save_jsonl(str(a))
        ev = TracingEvaluator(SymbolicEvaluator(CkksParameters.toy()),
                              name="other")
        ct = ev.fresh(level=4)
        ev.he_mult(ct, ct, rescale=True)
        b = tmp_path / "b.jsonl"
        ev.trace.save_jsonl(str(b))
        return str(a), str(b)

    def test_identical_traces_exit_zero(self, pair, capsys):
        a, _ = pair
        assert diff_main([a, a]) == 0
        out = capsys.readouterr().out
        assert "(no deltas)" in out

    def test_different_traces_exit_one_and_print_deltas(self, pair,
                                                        capsys):
        a, b = pair
        assert diff_main([a, b]) == 1
        out = capsys.readouterr().out
        assert "op-type deltas" in out
        assert "he_rotate" in out
        assert "level deltas" in out

    def test_count_deltas_shape(self):
        trace_a = _record_toy_trace()
        trace_b = _record_toy_trace()
        result = count_deltas(trace_a, trace_b)
        assert result == {"by_kind": {}, "by_level": {}}

    def test_module_is_runnable(self, pair):
        """python -m repro.trace.diff must work (satellite CLI)."""
        import subprocess
        import sys
        a, _ = pair
        proc = subprocess.run(
            [sys.executable, "-m", "repro.trace.diff", a, a],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert "no deltas" in proc.stdout
