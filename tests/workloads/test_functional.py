"""Functional tests: encrypted LR training and encrypted convolution."""

import numpy as np
import pytest

from repro.fhe import CkksContext, CkksParameters
from repro.workloads import EncryptedConvLayer, EncryptedLogisticRegression

#: Paper-word parameters: same shape as the toy preset but with the
#: paper's 54-bit primes.  Feasible in the fast lane only because the
#: double-word native kernels keep 54-bit products off the object-dtype
#: path (this configuration used to be minutes of Python-int loops).
PARAMS_54 = CkksParameters._build(ring_degree=1 << 10, scale_bits=50,
                                  prime_bits=54, max_level=5, boot_levels=3,
                                  dnum=2, fft_iterations=2)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.toy(seed=41)


class TestEncryptedLogisticRegression:
    # Previously slow-gated: native 54/30-bit kernels run a 3-step
    # training loop in ~1.5s, so both word sizes live in the fast lane.
    @pytest.mark.parametrize("word", ["30bit-toy", "54bit-paper-word"])
    def test_training_reduces_loss(self, ctx, word):
        if word == "54bit-paper-word":
            ctx = CkksContext(PARAMS_54, seed=41)
        rng = np.random.default_rng(5)
        features = rng.uniform(-1, 1, size=(16, 3))
        true_w = np.array([1.0, -1.5, 0.5])
        labels = (features @ true_w > 0).astype(float)
        model = EncryptedLogisticRegression(ctx, num_features=3,
                                            learning_rate=2.0)
        model.train_step(features, labels)
        acc1 = np.mean((model.predict(features) > 0.5) == labels)
        model.train_step(features, labels)
        model.train_step(features, labels)
        acc3 = np.mean((model.predict(features) > 0.5) == labels)
        assert acc3 >= acc1
        assert acc3 >= 0.8

    def test_gradient_matches_plaintext(self, ctx):
        """One encrypted step equals the plaintext gradient step."""
        rng = np.random.default_rng(6)
        features = rng.uniform(-1, 1, size=(16, 2))
        labels = (features[:, 0] > 0).astype(float)
        model = EncryptedLogisticRegression(ctx, num_features=2,
                                            learning_rate=1.0)
        encrypted_w = model.train_step(features, labels).copy()
        # Plaintext reference with the same sigmoid approximation.
        from repro.workloads import SIGMOID_COEFFS
        z = features @ np.zeros(2)
        p = np.polyval(SIGMOID_COEFFS[::-1], z)
        grad = features.T @ (p - labels) / len(labels)
        expected = -grad
        assert np.max(np.abs(encrypted_w - expected)) < 5e-3

    def test_feature_count_validated(self, ctx):
        model = EncryptedLogisticRegression(ctx, num_features=3)
        with pytest.raises(ValueError):
            model.train_step(np.zeros((8, 2)), np.zeros(8))

    def test_non_power_of_two_batch_rejected(self, ctx):
        model = EncryptedLogisticRegression(ctx, num_features=2)
        with pytest.raises(ValueError):
            model.train_step(np.zeros((10, 2)), np.zeros(10))


class TestEncryptedConv:
    def test_identity_kernel(self, ctx):
        kernel = np.zeros((3, 3))
        kernel[1, 1] = 1.0
        layer = EncryptedConvLayer(ctx, image_size=4, kernel=kernel)
        rng = np.random.default_rng(7)
        image = rng.uniform(0, 1, (4, 4))
        out = layer.apply(ctx.encrypt(image.flatten()))
        got = ctx.decrypt(out)[:16].real.reshape(4, 4)
        assert np.max(np.abs(got - image)) < 1e-3

    def test_matches_reference(self, ctx):
        rng = np.random.default_rng(8)
        kernel = rng.uniform(-0.3, 0.3, (3, 3))
        layer = EncryptedConvLayer(ctx, image_size=6, kernel=kernel)
        image = rng.uniform(0, 1, (6, 6))
        out = layer.apply(ctx.encrypt(image.flatten()))
        got = ctx.decrypt(out)[:36].real.reshape(6, 6)
        assert np.max(np.abs(got - layer.reference(image))) < 1e-3

    def test_edge_padding_is_zero(self, ctx):
        """Border pixels only see in-image taps (zero padding)."""
        kernel = np.ones((3, 3))
        layer = EncryptedConvLayer(ctx, image_size=4, kernel=kernel)
        image = np.ones((4, 4))
        out = layer.apply(ctx.encrypt(image.flatten()))
        got = ctx.decrypt(out)[:16].real.reshape(4, 4)
        assert abs(got[0, 0] - 4.0) < 1e-3      # corner: 2x2 window
        assert abs(got[1, 1] - 9.0) < 1e-3      # interior: full window

    def test_kernel_shape_validated(self, ctx):
        with pytest.raises(ValueError):
            EncryptedConvLayer(ctx, 4, np.ones((2, 2)))

    def test_image_must_fit(self, ctx):
        big = int(np.sqrt(ctx.params.num_slots)) + 1
        with pytest.raises(ValueError):
            EncryptedConvLayer(ctx, big, np.ones((3, 3)))
