"""Traced vs legacy workload DAGs: invariants + block-count goldens.

The legacy hand-built builders are the golden references; the traced
path (evaluator program -> symbolic trace -> lowering) must reproduce
their per-block-type multiplicities and level profile exactly, and both
families must satisfy the shared DAG invariants.
"""

from collections import Counter

import pytest

from repro.blocksim.blocks import BlockType
from repro.fhe.params import CkksParameters
from repro.trace import assert_workload_dag
from repro.workloads import (build_workload, compile_workload,
                             workload_names, workload_plans)

WORKLOADS = ("boot", "helr", "resnet")


@pytest.fixture(scope="module")
def params():
    return CkksParameters.paper()


@pytest.fixture(scope="module")
def graphs(params):
    return {(name, source): build_workload(name, params, source=source)
            for name in WORKLOADS for source in ("traced", "legacy")}


def _type_counts(graph):
    return Counter(d["block"].block_type
                   for _, d in graph.nodes(data=True))


class TestDagInvariants:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("source", ["traced", "legacy"])
    def test_invariants_hold(self, graphs, params, name, source):
        assert_workload_dag(
            graphs[(name, source)], params=params,
            require_keyswitch_meta=(source == "traced"))


class TestTracedMatchesLegacy:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_block_type_counts_equal(self, graphs, name):
        traced = _type_counts(graphs[(name, "traced")])
        legacy = _type_counts(graphs[(name, "legacy")])
        assert traced == legacy, f"{name}: {traced} != {legacy}"

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_level_histograms_equal(self, graphs, name):
        """Levels drive block costs; the traced profile must match."""
        def histogram(graph):
            return Counter((d["block"].block_type, d["block"].level)
                           for _, d in graph.nodes(data=True))
        assert histogram(graphs[(name, "traced")]) \
            == histogram(graphs[(name, "legacy")]), name

    def test_bootstrap_golden_counts(self, graphs):
        """Absolute golden for the paper-parameter bootstrap DAG, so
        simultaneous drift of both families is caught too."""
        counts = _type_counts(graphs[("boot", "traced")])
        assert counts == {
            BlockType.MOD_RAISE: 1,
            BlockType.HE_ROTATE: 82,     # 8x10 BSGS + 2 conjugations
            BlockType.POLY_MULT: 112,    # 8 stages x radix 14
            BlockType.HE_ADD: 105,       # 8x13 accumulations + join
            BlockType.HE_RESCALE: 20,    # 8 stages + 12 EvalMod
            BlockType.SCALAR_MULT: 20,   # EvalMod normalizations
            BlockType.HE_MULT: 40,       # EvalMod square chains
        }

    def test_boot_key_multiplicity_profile_matches(self, graphs):
        """LABS groups on key ids: the traced key-reuse *profile* (how
        many rotations share each key, ignoring the id strings) must
        equal the legacy annotation profile for the bootstrap DAG.

        (HELR/ResNet traced graphs share real rotation amounts between
        the application loop and the embedded bootstraps — e.g. rot-1
        is both a reduction step and a BSGS baby step — where the
        legacy annotations used disjoint synthetic namespaces, so only
        the distinct-key *count* is compared there.)"""
        def profile(graph):
            keys = Counter(
                d["block"].metadata["key"]
                for _, d in graph.nodes(data=True)
                if d["block"].block_type is BlockType.HE_ROTATE)
            return sorted(keys.values())
        assert profile(graphs[("boot", "traced")]) \
            == profile(graphs[("boot", "legacy")])

    @pytest.mark.parametrize("name", ["helr", "resnet"])
    def test_distinct_key_count_close_to_legacy(self, graphs, name):
        def distinct(graph):
            return len({d["block"].metadata["key"]
                        for _, d in graph.nodes(data=True)
                        if d["block"].block_type
                        is BlockType.HE_ROTATE})
        traced = distinct(graphs[(name, "traced")])
        legacy = distinct(graphs[(name, "legacy")])
        assert abs(traced - legacy) <= 4, (traced, legacy)


class TestRegistry:
    def test_names(self):
        assert set(workload_names()) >= set(WORKLOADS)

    def test_plans_are_cached_per_params(self, params):
        """Plan-cache identity: one compile per (program, params)."""
        plans = workload_plans(params)
        again = workload_plans(params)
        for name in WORKLOADS:
            assert plans[name] is again[name]
            assert plans[name] is compile_workload(name, params)

    def test_unknown_source_rejected(self, params):
        with pytest.raises(ValueError):
            build_workload("boot", params, source="nope")

    def test_trace_exposes_keyswitch_shape(self, params):
        trace = compile_workload("boot", params).trace
        ks = trace.keyswitch_ops()
        assert ks
        assert all(op.meta["dnum"] == params.dnum for op in ks)

    def test_traced_graphs_at_test_parameters(self):
        """Programs are parameter-generic: the tiny-parameter trace
        (CI smoke lane) builds healthy DAGs too."""
        params = CkksParameters.test()
        for name in WORKLOADS:
            graph = build_workload(name, params, source="traced")
            assert_workload_dag(graph, params=params,
                                require_keyswitch_meta=True)
            assert graph.number_of_nodes() > 50


class TestDeprecationShimsRemoved:
    """The one-release shims (trace_workload/workload_graphs) are gone;
    the engine surface is the only entry point."""

    def test_shims_are_gone(self):
        import repro.workloads as wl
        import repro.workloads.registry as registry
        for module in (wl, registry):
            assert not hasattr(module, "trace_workload")
            assert not hasattr(module, "workload_graphs")

    def test_replacement_surface_covers_shim_uses(self, params):
        trace = compile_workload("boot", params).trace
        assert len(trace) > 0
        plans = workload_plans(source="legacy")
        assert set(plans) >= set(WORKLOADS)
        assert all(plan.graph.number_of_nodes() > 0
                   for plan in plans.values())
